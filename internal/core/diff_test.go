package core

import (
	"testing"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/workload"
)

// mutation describes one clone-pair relationship exercised by the
// differential tests; together they cover every divergence kind the merger
// must guard correctly.
type mutation struct {
	name  string
	apply func(spec *workload.FuncSpec)
}

var mutations = []mutation{
	{"identical", func(s *workload.FuncSpec) {}},
	{"type-variant", func(s *workload.FuncSpec) { s.Scalar = ir.F64() }},
	{"type-int-variant", func(s *workload.FuncSpec) { s.Scalar = ir.I64() }},
	{"cfg-variant", func(s *workload.FuncSpec) { s.Guard = true }},
	{"const-variant", func(s *workload.FuncSpec) { s.ConstSalt += 13 }},
	{"drop-variant", func(s *workload.FuncSpec) { s.ConstSalt += 2; s.DropMod = 7 }},
	{"reorder-variant", func(s *workload.FuncSpec) { s.ReorderParams = true }},
	{"void-variant", func(s *workload.FuncSpec) { s.VoidRet = true }},
	{"shape-variant", func(s *workload.FuncSpec) { s.Regions++ }},
}

// runFunc executes f on a deterministic input grid, folding results and a
// memory checksum into one value.
func runFunc(t *testing.T, m *ir.Module, name string, trial uint64) uint64 {
	t.Helper()
	mc := interp.NewMachine(m)
	workload.RegisterIntrinsics(mc)
	f := m.FuncByName(name)
	if f == nil {
		t.Fatalf("function %s missing", name)
	}
	args := make([]uint64, len(f.Params))
	var buf uint64
	for k, pt := range f.Sig().Fields {
		switch {
		case pt == ir.PointerTo(ir.I64()):
			var err error
			buf, err = mc.Alloc(64 * 8)
			if err != nil {
				t.Fatal(err)
			}
			args[k] = buf
		case pt == ir.F32():
			args[k] = uint64(interp.F32(float32(trial) * 0.75))
		case pt == ir.F64():
			args[k] = interp.F64(float64(trial) * 0.75)
		default:
			args[k] = trial * 131
		}
	}
	v, err := mc.CallFunc(f, args)
	if err != nil {
		t.Fatalf("%s(trial %d): %v", name, trial, err)
	}
	// Fold in the buffer contents so stores through pointer params count.
	if buf != 0 {
		data, err := mc.ReadMem(buf, 64*8)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			v = v*16777619 + uint64(b)
		}
	}
	return v
}

// TestDifferentialMergeAllMutations is the central soundness test: for
// every mutation kind and several seeds, merging a clone pair and
// committing it must leave every observable behaviour unchanged.
func TestDifferentialMergeAllMutations(t *testing.T) {
	for _, mut := range mutations {
		mut := mut
		t.Run(mut.name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				base := workload.FuncSpec{
					Name: "orig", Seed: seed*2671 + 17, Scalar: ir.F32(),
					NumParams: int(seed%4) + 1, Regions: int(seed%4) + 1,
					OpsPerBlock: int(seed%6) + 3,
				}
				variant := base
				variant.Name = "variant"
				mut.apply(&variant)

				build := func() *ir.Module {
					m := ir.NewModule("diff")
					workload.Generate(m, base)
					workload.Generate(m, variant)
					return m
				}

				ref := build()
				opt := build()
				res, err := Merge(opt.FuncByName("orig"), opt.FuncByName("variant"), DefaultOptions())
				if err != nil {
					t.Fatalf("seed %d: merge: %v", seed, err)
				}
				res.Commit()
				if err := ir.VerifyModule(opt); err != nil {
					t.Fatalf("seed %d: verify: %v", seed, err)
				}

				for trial := uint64(0); trial < 3; trial++ {
					for _, fn := range []string{"orig", "variant"} {
						want := runFunc(t, ref, fn, trial)
						got := runFunc(t, opt, fn, trial)
						if want != got {
							t.Fatalf("seed %d %s(trial %d): original %#x, merged %#x",
								seed, fn, trial, want, got)
						}
					}
				}
			}
		})
	}
}

// TestDifferentialMergeAlternativeOrders re-runs a subset of the
// differential matrix under the two non-default linearization orders; the
// paper notes the order affects effectiveness, never correctness (§III-B).
func TestDifferentialMergeAlternativeOrders(t *testing.T) {
	for _, order := range []linearize.Order{linearize.OrderDFS, linearize.OrderLayout} {
		order := order
		t.Run(order.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				base := workload.FuncSpec{
					Name: "orig", Seed: seed * 919, Scalar: ir.I32(),
					NumParams: 2, Regions: 3, OpsPerBlock: 5,
				}
				variant := base
				variant.Name = "variant"
				variant.Guard = true
				variant.ConstSalt = 5

				build := func() *ir.Module {
					m := ir.NewModule("ord")
					workload.Generate(m, base)
					workload.Generate(m, variant)
					return m
				}
				ref := build()
				opt := build()
				opts := DefaultOptions()
				opts.Order = order
				res, err := Merge(opt.FuncByName("orig"), opt.FuncByName("variant"), opts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				res.Commit()
				if err := ir.VerifyModule(opt); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, fn := range []string{"orig", "variant"} {
					if runFunc(t, ref, fn, 2) != runFunc(t, opt, fn, 2) {
						t.Fatalf("seed %d %s: behaviour changed under %s order", seed, fn, order)
					}
				}
			}
		})
	}
}

// TestDifferentialChainMerges merges three mutually similar clones through
// the feedback path (merged functions merging again) and validates
// semantics after both commits.
func TestDifferentialChainMerges(t *testing.T) {
	base := workload.FuncSpec{
		Name: "a", Seed: 5417, Scalar: ir.F32(),
		NumParams: 2, Regions: 3, OpsPerBlock: 6,
	}
	specB := base
	specB.Name = "b"
	specB.Scalar = ir.F64()
	specC := base
	specC.Name = "c"
	specC.Guard = true

	build := func() *ir.Module {
		m := ir.NewModule("chain")
		workload.Generate(m, base)
		workload.Generate(m, specB)
		workload.Generate(m, specC)
		return m
	}
	ref := build()
	opt := build()

	res1, err := Merge(opt.FuncByName("a"), opt.FuncByName("b"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res1.Commit()
	res2, err := Merge(res1.Merged, opt.FuncByName("c"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res2.Commit()
	if err := ir.VerifyModule(opt); err != nil {
		t.Fatalf("verify after chain: %v", err)
	}

	for _, fn := range []string{"a", "b", "c"} {
		for trial := uint64(0); trial < 3; trial++ {
			if runFunc(t, ref, fn, trial) != runFunc(t, opt, fn, trial) {
				t.Fatalf("%s(trial %d) diverged after chained merges", fn, trial)
			}
		}
	}
}

// TestMergeIdempotentFormatting ensures committed modules stay parseable:
// print -> parse -> print is stable after merging.
func TestMergeIdempotentFormatting(t *testing.T) {
	m := ir.NewModule("fmt")
	base := workload.FuncSpec{
		Name: "orig", Seed: 31, Scalar: ir.F32(), NumParams: 3, Regions: 3, OpsPerBlock: 6,
	}
	workload.Generate(m, base)
	base.Name = "variant"
	base.Scalar = ir.F64()
	workload.Generate(m, base)
	res, err := Merge(m.FuncByName("orig"), m.FuncByName("variant"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()

	text1 := ir.FormatModule(m)
	m2, err := ir.ParseModule("fmt", text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	if err := ir.VerifyModule(m2); err != nil {
		t.Fatal(err)
	}
	if text2 := ir.FormatModule(m2); text1 != text2 {
		t.Error("merged module formatting unstable")
	}
}

// TestMergedNamesUnique guards against symbol collisions when many merges
// target the same function names.
func TestMergedNamesUnique(t *testing.T) {
	m := ir.NewModule("names")
	var fns []*ir.Func
	for i := 0; i < 6; i++ {
		spec := workload.FuncSpec{
			Name: "clone", Seed: 777, Scalar: ir.I64(),
			NumParams: 1, Regions: 2, OpsPerBlock: 4, Internal: true,
		}
		fns = append(fns, workload.Generate(m, spec))
	}
	// Keep them alive.
	user := m.NewFuncIn("user", ir.FuncOf(ir.I64(), ir.I64()))
	bd := ir.NewBuilder(user.NewBlockIn("entry"))
	var acc ir.Value = ir.NewConstInt(ir.I64(), 0)
	for _, f := range fns {
		acc = bd.Add(acc, bd.Call(f, user.Params[0]))
	}
	bd.Ret(acc)

	seen := map[string]bool{}
	pair := func(a, b *ir.Func) *ir.Func {
		res, err := Merge(a, b, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res.Commit()
		if seen[res.Merged.Name()] {
			t.Fatalf("duplicate merged name %s", res.Merged.Name())
		}
		seen[res.Merged.Name()] = true
		return res.Merged
	}
	m1 := pair(fns[0], fns[1])
	m2 := pair(fns[2], fns[3])
	m3 := pair(fns[4], fns[5])
	m4 := pair(m1, m2)
	pair(m4, m3)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Errorf("expected 5 distinct merged names, got %d", len(seen))
	}
}
