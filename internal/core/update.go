package core

import (
	"fmt"

	"fmsa/internal/ir"
)

// Commit installs the merged function into the module, redirects every
// direct call of the originals to it, and then either deletes each original
// (when its linkage permits and no other references remain) or replaces its
// body with a thunk that forwards to the merged function (§III-A, §IV).
//
// It returns the number of original functions that were deleted outright
// (0, 1 or 2); the others remain as thunks.
func (r *Result) Commit() int {
	mod := r.F1.Parent()
	r.Merged.SetName(mod.UniqueName(r.Merged.Name()))
	mod.AddFunc(r.Merged)

	// Drop the original bodies first so stale intra-body references (e.g.
	// f1 calling f2) disappear before the rewrite.
	r.F1.DropBody()
	r.F2.DropBody()

	r.rewriteCallers(r.F1, true, r.ParamMap1)
	r.rewriteCallers(r.F2, false, r.ParamMap2)

	removed := 0
	for i, f := range []*ir.Func{r.F1, r.F2} {
		id := i == 0
		pmap := r.ParamMap1
		if !id {
			pmap = r.ParamMap2
		}
		if f.NumUses() == 0 && f.Linkage == ir.InternalLinkage {
			mod.RemoveFunc(f)
			removed++
			continue
		}
		r.buildThunk(f, id, pmap)
	}
	// The committed body's instructions live in the scratch arena's slabs;
	// recycle the side tables but abandon the slabs (see mergerScratch).
	if r.scratch != nil {
		dropScratchCommitted(r.scratch)
		r.scratch = nil
	}
	return removed
}

// mergedArgs builds the argument list for a call to the merged function on
// behalf of original function id (true = F1), given the original arguments.
func (r *Result) mergedArgs(id bool, pmap []int, origArgs []ir.Value) []ir.Value {
	return mergedArgsFor(r.Merged.Sig(), r.HasFuncID, id, pmap, origArgs)
}

// mergedArgsFor builds the argument list for a call to a merged function
// with signature sig on behalf of the original function identified by id
// (true = F1), given the original arguments and the parameter map.
func mergedArgsFor(sig *ir.Type, hasFuncID, id bool, pmap []int, origArgs []ir.Value) []ir.Value {
	args := make([]ir.Value, len(sig.Fields))
	if hasFuncID {
		args[0] = ir.NewConstInt(ir.Bool(), b2i(id))
	}
	for i, a := range origArgs {
		args[pmap[i]] = a
	}
	for s, a := range args {
		if a == nil {
			// Parameter belonging to the other function: undefined
			// (§III-E).
			args[s] = ir.NewUndef(sig.Fields[s])
		}
	}
	return args
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// rewriteCallers redirects every remaining direct call or invoke of f to the
// merged function, inserting return-value conversions where the merged
// return type differs from f's.
func (r *Result) rewriteCallers(f *ir.Func, id bool, pmap []int) {
	for _, c := range f.Callers() {
		r.rewriteCall(c, f, id, pmap)
	}
}

func (r *Result) rewriteCall(c *ir.Inst, f *ir.Func, id bool, pmap []int) {
	blk := c.Parent()
	args := r.mergedArgs(id, pmap, c.CallArgs())
	mret := r.Merged.ReturnType()

	var nc *ir.Inst
	if c.Op == ir.OpCall {
		ops := append([]ir.Value{r.Merged}, args...)
		nc = ir.NewInst(ir.OpCall, mret, ops...)
		blk.InsertBefore(nc, c)
		if !c.Type().IsVoid() {
			v := ir.Value(nc)
			if v.Type() != c.Type() {
				v = convertAfter(blk, nc, v, c.Type())
			}
			ir.ReplaceAllUsesWith(c, v)
		}
		c.RemoveFromParent()
		return
	}

	// Invoke: the result value exists only along the normal edge. When a
	// conversion is needed, split the edge with a fresh block holding the
	// conversions.
	normal, unwind := c.InvokeNormal(), c.InvokeUnwind()
	ops := append([]ir.Value{r.Merged}, args...)
	ops = append(ops, normal, unwind)
	nc = ir.NewInst(ir.OpInvoke, mret, ops...)
	blk.InsertBefore(nc, c)
	if !c.Type().IsVoid() && mret != c.Type() {
		fn := blk.Parent()
		eb := ir.NewBlock("")
		fn.AppendBlock(eb)
		bd := ir.NewBuilder(eb)
		v := convertFromRet(appendEmit(bd), nc, c.Type())
		bd.Br(normal)
		nc.SetOperand(nc.NumOperands()-2, eb)
		ir.ReplaceAllUsesWith(c, v)
	} else if !c.Type().IsVoid() {
		ir.ReplaceAllUsesWith(c, nc)
	}
	c.RemoveFromParent()
}

// convertAfter emits return-type unwrap conversions immediately after pos.
// The block is guaranteed non-empty past pos (a call is never a terminator).
func convertAfter(blk *ir.Block, pos *ir.Inst, v ir.Value, want *ir.Type) ir.Value {
	anchor := blk.Insts[indexOf(blk, pos)+1]
	emit := func(in *ir.Inst) *ir.Inst {
		blk.InsertBefore(in, anchor)
		return in
	}
	return convertFromRet(emit, v, want)
}

// buildThunk replaces f's (already dropped) body with a tail call to the
// merged function (§III-A).
func (r *Result) buildThunk(f *ir.Func, id bool, pmap []int) {
	ForwardThunk(f, r.Merged, r.HasFuncID, id, pmap)
}

// ForwardThunk gives the bodiless function f a single-block body that
// forwards to callee — the merged function, or a local declaration of it in
// another translation unit — passing the function-id constant when the
// merged signature carries one, mapping f's parameters through pmap, and
// converting the returned value back to f's return type (§III-A). The
// callee may be a declaration; sharded global merging relies on that to
// thunk a function whose merged body lives in a different unit.
func ForwardThunk(f, callee *ir.Func, hasFuncID, id bool, pmap []int) {
	entry := f.NewBlockIn("entry")
	bd := ir.NewBuilder(entry)
	origArgs := make([]ir.Value, len(f.Params))
	for i, p := range f.Params {
		origArgs[i] = p
	}
	args := mergedArgsFor(callee.Sig(), hasFuncID, id, pmap, origArgs)
	call := bd.Call(callee, args...)
	if f.ReturnType().IsVoid() {
		bd.Ret(nil)
		return
	}
	v := ir.Value(call)
	if v.Type() != f.ReturnType() {
		v = convertFromRet(appendEmit(bd), v, f.ReturnType())
	}
	bd.Ret(v)
}

// sanity check helper used by tests.
func mustSameModule(fs ...*ir.Func) error {
	if len(fs) == 0 {
		return nil
	}
	m := fs[0].Parent()
	for _, f := range fs[1:] {
		if f.Parent() != m {
			return fmt.Errorf("functions in different modules")
		}
	}
	return nil
}
