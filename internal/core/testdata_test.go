package core

// IR sources shared across core tests: the paper's two motivating examples
// (Fig. 1 and Fig. 2) translated to the project IR, plus smaller fixtures.

// sphinxIR models Fig. 1: glist_add_float32 / glist_add_float64 from
// 482.sphinx3 — identical shapes, one differing parameter type and store.
const sphinxIR = `
declare i8* @mymalloc(i64)

define internal i8* @glist_add_float32(i8* %g, f32 %val) {
entry:
  %mem = call i8* @mymalloc(i64 16)
  %data = bitcast i8* %mem to f32*
  store f32 %val, f32* %data
  %nextraw = getelementptr i8, i8* %mem, i64 8
  %next = bitcast i8* %nextraw to i8**
  store i8* %g, i8** %next
  ret i8* %mem
}

define internal i8* @glist_add_float64(i8* %g, f64 %val) {
entry:
  %mem = call i8* @mymalloc(i64 16)
  %data = bitcast i8* %mem to f64*
  store f64 %val, f64* %data
  %nextraw = getelementptr i8, i8* %mem, i64 8
  %next = bitcast i8* %nextraw to i8**
  store i8* %g, i8** %next
  ret i8* %mem
}

define i8* @use32(i8* %g, f32 %v) {
entry:
  %r = call i8* @glist_add_float32(i8* %g, f32 %v)
  ret i8* %r
}

define i8* @use64(i8* %g, f64 %v) {
entry:
  %r = call i8* @glist_add_float64(i8* %g, f64 %v)
  ret i8* %r
}
`

// libquantumIR models Fig. 2: quantum_cond_phase / quantum_cond_phase_inv
// from 462.libquantum — same signature, one extra basic block and a negated
// constant. The quantum register is modelled as {i64 size, i64* states,
// f64* amps} laid out as {i64, i64*, f64*}.
const libquantumIR = `
declare i1 @quantum_objcode_put(i32, i32, i32)
declare void @quantum_decohere({i64, i64*, f64*}*)

define void @quantum_cond_phase_inv(i32 %control, i32 %target, {i64, i64*, f64*}* %reg) {
entry:
  %cmt = sub i32 %control, %target
  %shamt = shl i32 1, %cmt
  %shf = sitofp i32 %shamt to f64
  %z = fdiv f64 -3.141592653589793, %shf
  %i = alloca i64
  store i64 0, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %szp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 0
  %sz = load i64, i64* %szp
  %c = icmp slt i64 %iv, %sz
  br i1 %c, label %body, label %done
body:
  %stp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 1
  %states = load i64*, i64** %stp
  %sp = getelementptr i64, i64* %states, i64 %iv
  %state = load i64, i64* %sp
  %cbit = zext i32 %control to i64
  %cmask = shl i64 1, %cbit
  %cand = and i64 %state, %cmask
  %ctest = icmp ne i64 %cand, 0
  br i1 %ctest, label %checktgt, label %next
checktgt:
  %tbit = zext i32 %target to i64
  %tmask = shl i64 1, %tbit
  %tand = and i64 %state, %tmask
  %ttest = icmp ne i64 %tand, 0
  br i1 %ttest, label %apply, label %next
apply:
  %ampp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 2
  %amps = load f64*, f64** %ampp
  %ap = getelementptr f64, f64* %amps, i64 %iv
  %amp = load f64, f64* %ap
  %amp2 = fmul f64 %amp, %z
  store f64 %amp2, f64* %ap
  br label %next
next:
  %iv2 = add i64 %iv, 1
  store i64 %iv2, i64* %i
  br label %head
done:
  call void @quantum_decohere({i64, i64*, f64*}* %reg)
  ret void
}

define void @quantum_cond_phase(i32 %control, i32 %target, {i64, i64*, f64*}* %reg) {
entry:
  %obj = call i1 @quantum_objcode_put(i32 7, i32 %control, i32 %target)
  br i1 %obj, label %earlyret, label %cont
earlyret:
  ret void
cont:
  %cmt = sub i32 %control, %target
  %shamt = shl i32 1, %cmt
  %shf = sitofp i32 %shamt to f64
  %z = fdiv f64 3.141592653589793, %shf
  %i = alloca i64
  store i64 0, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %szp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 0
  %sz = load i64, i64* %szp
  %c = icmp slt i64 %iv, %sz
  br i1 %c, label %body, label %done
body:
  %stp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 1
  %states = load i64*, i64** %stp
  %sp = getelementptr i64, i64* %states, i64 %iv
  %state = load i64, i64* %sp
  %cbit = zext i32 %control to i64
  %cmask = shl i64 1, %cbit
  %cand = and i64 %state, %cmask
  %ctest = icmp ne i64 %cand, 0
  br i1 %ctest, label %checktgt, label %next
checktgt:
  %tbit = zext i32 %target to i64
  %tmask = shl i64 1, %tbit
  %tand = and i64 %state, %tmask
  %ttest = icmp ne i64 %tand, 0
  br i1 %ttest, label %apply, label %next
apply:
  %ampp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 2
  %amps = load f64*, f64** %ampp
  %ap = getelementptr f64, f64* %amps, i64 %iv
  %amp = load f64, f64* %ap
  %amp2 = fmul f64 %amp, %z
  store f64 %amp2, f64* %ap
  br label %next
next:
  %iv2 = add i64 %iv, 1
  store i64 %iv2, i64* %i
  br label %head
done:
  call void @quantum_decohere({i64, i64*, f64*}* %reg)
  ret void
}
`

// identicalPairIR contains two byte-identical internal functions plus
// callers.
const identicalPairIR = `
define internal i32 @ctor_a(i32 %x) {
entry:
  %a = add i32 %x, 10
  %b = mul i32 %a, 3
  ret i32 %b
}

define internal i32 @ctor_b(i32 %x) {
entry:
  %a = add i32 %x, 10
  %b = mul i32 %a, 3
  ret i32 %b
}

define i32 @call_a(i32 %x) {
entry:
  %r = call i32 @ctor_a(i32 %x)
  ret i32 %r
}

define i32 @call_b(i32 %x) {
entry:
  %r = call i32 @ctor_b(i32 %x)
  ret i32 %r
}
`

// retMixIR holds functions with different return types (i32 vs f64).
const retMixIR = `
define internal i32 @geti(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define internal f64 @getf(f64 %x) {
entry:
  %r = fadd f64 %x, 1.0
  ret f64 %r
}

define i32 @usei(i32 %x) {
entry:
  %r = call i32 @geti(i32 %x)
  ret i32 %r
}

define f64 @usef(f64 %x) {
entry:
  %r = call f64 @getf(f64 %x)
  ret f64 %r
}
`

// voidMixIR merges a void function with a value-returning one.
const voidMixIR = `
@acc = global i64 zeroinitializer

define internal void @bump(i64 %d) {
entry:
  %v = load i64, i64* @acc
  %v2 = add i64 %v, %d
  store i64 %v2, i64* @acc
  ret void
}

define internal i64 @bumpget(i64 %d) {
entry:
  %v = load i64, i64* @acc
  %v2 = add i64 %v, %d
  store i64 %v2, i64* @acc
  ret i64 %v2
}

define void @useb(i64 %d) {
entry:
  call void @bump(i64 %d)
  ret void
}

define i64 @usebg(i64 %d) {
entry:
  %r = call i64 @bumpget(i64 %d)
  ret i64 %r
}
`

// ehPairIR holds two similar functions using invoke/landingpad.
const ehPairIR = `
declare void @throw()
declare void @log(i64)

define internal i64 @guard_add(i64 %x) {
entry:
  invoke void @throw() to label %ok unwind label %lpad
ok:
  %r = add i64 %x, 1
  ret i64 %r
lpad:
  %lp = landingpad cleanup
  call void @log(i64 %x)
  ret i64 0
}

define internal i64 @guard_mul(i64 %x) {
entry:
  invoke void @throw() to label %ok unwind label %lpad
ok:
  %r = mul i64 %x, 2
  ret i64 %r
lpad:
  %lp = landingpad cleanup
  call void @log(i64 %x)
  ret i64 0
}

define i64 @use_ga(i64 %x) {
entry:
  %r = call i64 @guard_add(i64 %x)
  ret i64 %r
}

define i64 @use_gm(i64 %x) {
entry:
  %r = call i64 @guard_mul(i64 %x)
  ret i64 %r
}
`
