package core

// Pre-codegen profitability bounding (the estimate-before-materialize
// discipline): an admissible upper bound on the §IV-A merge profit computed
// directly from the alignment and the two linearizations, before any merged
// code exists. When the best case cannot clear the profit threshold, Merge
// skips code generation entirely — the dominant cost of exploration, since
// only a small fraction of aligned pairs turn out profitable.
//
// Admissibility argument. Exact profit is
//
//	Δ = c(f1) + c(f2) − c(merged) − ε
//
// so an upper bound on Δ needs exact c(f1)+c(f2) (memoized, see
// tti.CostMemo) and provable lower bounds on c(merged) and ε:
//
//   - c(merged) ≥ FuncOverhead + Σ per-column floors. Every aligned column
//     materializes in the merged body: a matched instruction column is
//     emitted once (a shallow clone of one side, same opcode/type/operand
//     count, so its InstSize equals the sources'; min of the two sides is
//     taken defensively), a gap instruction column is emitted once at its
//     source's size, and label columns cost nothing. Code generation only
//     ever ADDS to that floor — func_id diamonds, operand selects, dispatch
//     blocks, demotion allocas/stores/loads, return-type casts, the entry
//     dispatch. The cleanup pass (SimplifyCFG) can DELETE instructions, so
//     every form it can remove floors at zero (instFloor): unconditional
//     branches (branch forwarding and straight-line merging delete exactly
//     those) and landingpads (dispatch-block hoisting replaces two pad
//     clones with one; a matched pad in diverged blocks is demoted to two
//     gap pads and the hoist then removes both). Conditional branches and
//     switches count in full — SimplifyCFG only folds them over a constant
//     condition, and constant-condition pairs are the one cascade hazard
//     (folding a cloned br/switch on a ConstInt makes whole cloned blocks
//     unreachable and deletable), so any such instruction in either
//     sequence disables bounding for the pair entirely. On top of the
//     column floors, matched columns whose operands hold differing fixed
//     values (constants, globals, function references — values the
//     merger's maps never remap) force an operand select each, taking the
//     cheaper pairing for two-operand commutative instructions
//     (guaranteedSelects mirrors fillMatched's reordering).
//   - ε ≥ Σ per-side floors. The merged function keeps every f1 parameter
//     and appends each f2 parameter it cannot reuse an equal-typed slot
//     for, so its arity is at least the per-type multiset maximum of the
//     two lists (mergedParamFloor mirrors buildParamPlan), plus the
//     func_id slot whenever any gap column or guaranteed select keeps the
//     func_id parameter referenced. Call size is monotone in argument
//     count on both targets, so a synthetic call with that floor arity
//     lower-bounds the rewritten call size; per-site growth is clamped at
//     zero exactly like the exact model. The thunk floor applies under the
//     same linkage/address-taken condition as the exact model and omits
//     only the non-negative return-cast term.
//
// Every floor is ≤ its exact counterpart, so Bound ≥ Δ: a pruned pair
// (Bound ≤ MinProfit) is a pair the exact model would also reject. The
// differential `fmsa-bench -exp bound` sweep and the admissibility property
// test assert exactly that, pair by pair.

import (
	"errors"

	"fmsa/internal/align"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/tti"
)

// ErrHopeless reports that the pre-codegen profitability bound proved the
// merge cannot clear the configured profit threshold; code generation was
// skipped and no Result exists. It is a rejection, not a failure: the exact
// cost model would have rejected the pair too.
var ErrHopeless = errors.New("core: profitability bound rules out this merge")

// PruneSpec enables pre-codegen profitability bounding in Merge. The caller
// supplies the same cost-model inputs the exact profit evaluation will use
// (target and caller snapshots), so the bound and the exact model agree on
// every shared term.
type PruneSpec struct {
	// Target is the code-size cost model.
	Target tti.Target
	// S1 and S2 are the caller snapshots of f1 and f2 (see CallerStats).
	S1, S2 CallerStats
	// MinProfit is the pruning threshold: Merge returns ErrHopeless when
	// the bound proves profit ≤ MinProfit. The exploration pipeline uses 0,
	// matching its `profit <= 0 → discard` rejection.
	MinProfit int
	// Costs optionally memoizes the FuncSize terms (nil computes directly).
	Costs *tti.CostMemo
}

// boundCtx carries the alignment correspondence needed to decide operand
// divergence exactly: two original values resolve to the same merged value
// iff they were aligned with each other (matched instruction columns, and
// labels to the same merged block) or assigned the same parameter slot.
type boundCtx struct {
	matchedI map[*ir.Inst]*ir.Inst   // f1 inst -> f2 inst matched with it
	matchedB map[*ir.Block]*ir.Block // f1 block -> f2 block whose labels matched
	plan     *paramPlan
	f1, f2   *ir.Func
}

// profitUpperBound computes the admissible profit bound for merging f1 and
// f2 under the given alignment and parameter plan. ok is false when
// bounding is disabled for the pair (constant-condition branch hazard); the
// caller must then proceed to code generation.
func profitUpperBound(f1, f2 *ir.Func, seq1, seq2 []linearize.Entry,
	steps []align.Step, plan *paramPlan, spec *PruneSpec) (bound int, ok bool) {

	if hasConstBranch(seq1) || hasConstBranch(seq2) {
		return 0, false
	}
	t := spec.Target
	before := spec.Costs.FuncSize(t, f1) + spec.Costs.FuncSize(t, f2)

	// First pass: record which columns were aligned with each other, so
	// operand divergence (select and dispatch-block floors) is decided the
	// same way the merger's value maps will decide it.
	ctx := &boundCtx{
		matchedI: make(map[*ir.Inst]*ir.Inst),
		matchedB: make(map[*ir.Block]*ir.Block),
		plan:     plan,
		f1:       f1, f2: f2,
	}
	for _, s := range steps {
		if s.Op != align.OpMatch {
			continue
		}
		if e1 := seq1[s.I]; e1.IsLabel() {
			ctx.matchedB[e1.Block] = seq2[s.J].Block
		} else {
			ctx.matchedI[e1.Inst] = seq2[s.J].Inst
		}
	}

	// Lower bound on c(merged): per-column floors over the alignment, plus
	// floors on the scaffolding code generation is forced to emit — operand
	// selects, dispatch blocks for diverging branch targets, and func_id
	// diamond branches. The diamond count replays passOne's shared/diverged
	// block state machine, which is a pure function of the step sequence:
	// entering a gap run from a shared block splits it with a conditional
	// branch on func_id, and conditional branches survive cleanup (func_id
	// is never constant).
	mergedLB := t.FuncOverhead()
	condBr := t.InstSize(ir.NewInst(ir.OpBr, ir.Void(), nil, nil, nil))
	gapSteps, selects := 0, 0
	var dispatch map[[2]*ir.Block]bool // distinct diverging target pairs
	cur1, cur2, next := 0, 0, 0        // block ids; equal ⇔ sides share a block
	for _, s := range steps {
		switch s.Op {
		case align.OpMatch:
			e1 := seq1[s.I]
			if e1.IsLabel() {
				next++
				cur1, cur2 = next, next
				continue
			}
			e2 := seq2[s.J]
			mergedLB += min(instFloor(t, e1.Inst), instFloor(t, e2.Inst))
			selects += ctx.forcedSelects(e1.Inst, e2.Inst)
			dispatch = ctx.divergingTargets(e1.Inst, e2.Inst, dispatch)
			if e1.Inst.Op == ir.OpLandingPad && cur1 != cur2 {
				continue // demoted to a gap pair; both sides stay diverged
			}
			if cur1 != cur2 {
				// Reconverge into a fresh shared block (unconditional
				// branches only — no floor contribution).
				next++
				cur1, cur2 = next, next
			}
		case align.OpGapA:
			gapSteps++
			if e := seq1[s.I]; e.IsLabel() {
				next++
				cur1 = next
			} else {
				mergedLB += instFloor(t, e.Inst)
				if cur1 == cur2 {
					mergedLB += condBr // func_id diamond split
					cur1, cur2 = next+1, next+2
					next += 2
				}
			}
		case align.OpGapB:
			gapSteps++
			if e := seq2[s.J]; e.IsLabel() {
				next++
				cur2 = next
			} else {
				mergedLB += instFloor(t, e.Inst)
				if cur1 == cur2 {
					mergedLB += condBr // func_id diamond split
					cur1, cur2 = next+1, next+2
					next += 2
				}
			}
		}
	}
	if selects > 0 {
		mergedLB += selects * t.InstSize(ir.NewInst(ir.OpSelect, ir.Bool(), nil, nil, nil))
	}
	// Each distinct diverging target pair materializes one memoized
	// dispatch block holding a conditional branch on func_id.
	mergedLB += len(dispatch) * condBr
	// The entry block's dispatch branch is conditional unless the two
	// original entry labels were matched with each other.
	if ctx.matchedB[f1.Entry()] != f2.Entry() {
		mergedLB += condBr
	}

	// Lower bound on ε: the merged arity floor gives a floor on the
	// rewritten call size (call size is monotone in argument count). The
	// parameter plan is exact for the non-func_id slots; the func_id slot
	// counts whenever any gap column, operand select or dispatch block
	// keeps it referenced.
	lbArity := len(plan.types) - 1
	if gapSteps > 0 || selects > 0 || len(dispatch) > 0 {
		lbArity++
	}
	callOps := make([]ir.Value, lbArity+1) // nil callee + nil args: size only
	callLB := t.InstSize(ir.NewInst(ir.OpCall, ir.Void(), callOps...))
	epsLB := deltaLowerBound(t, f1, spec.S1, callLB) +
		deltaLowerBound(t, f2, spec.S2, callLB)

	return before - mergedLB - epsLB, true
}

// instFloor is the size an aligned instruction column provably contributes
// to the merged body. Unconditional branches floor at zero — block
// forwarding and straight-line merging delete exactly those — and so do
// landingpads (dispatch-block hoisting replaces two pad clones with one; a
// matched pad in diverged blocks is demoted to two gap pads and the hoist
// then removes both). Conditional branches and switches survive cleanup in
// full: SimplifyCFG only folds them over a constant condition, and
// constant-condition pairs bail out of bounding before any floor is taken.
func instFloor(t tti.Target, in *ir.Inst) int {
	switch in.Op {
	case ir.OpLandingPad:
		return 0
	case ir.OpBr:
		if in.NumOperands() == 1 {
			return 0
		}
	}
	return t.InstSize(in)
}

// diverges reports whether a (a side-1 operand) and b (a side-2 operand)
// provably resolve to different merged values, forcing fillMatched to emit
// an operand select. It mirrors the merger's resolve: instructions map to
// their clones (shared iff matched with each other), parameters to their
// plan slots, and constants, globals and function references to
// themselves. Undecidable pairs return false — the floor stays admissible.
func (c *boundCtx) diverges(a, b ir.Value) bool {
	if a == nil || b == nil {
		return false
	}
	switch x := a.(type) {
	case *ir.Block:
		return false // label operands go through dispatch blocks, not selects
	case *ir.Inst:
		y, ok := b.(*ir.Inst)
		return !ok || c.matchedI[x] != y
	case *ir.Param:
		if x.Parent() != c.f1 {
			return false // foreign param: out of resolve's model
		}
		switch y := b.(type) {
		case *ir.Block:
			return false
		case *ir.Param:
			if y.Parent() != c.f2 {
				return false
			}
			return c.plan.map1[x.Index] != c.plan.map2[y.Index]
		default:
			return true // a parameter slot never equals a clone or constant
		}
	default:
		// Fixed values: constants, globals and function references.
		switch b.(type) {
		case *ir.Block:
			return false
		case *ir.Inst, *ir.Param:
			return true
		default:
			return a != b && !ir.ConstantsEqual(a, b)
		}
	}
}

// forcedSelects counts the operand selects code generation must emit for a
// matched instruction column: operand positions whose sides provably
// diverge. For two-operand commutative instructions the merger may swap
// one side to minimise divergence, so the floor takes the cheaper pairing.
func (c *boundCtx) forcedSelects(i1, i2 *ir.Inst) int {
	ops1, ops2 := i1.Operands(), i2.Operands()
	if i1.Op.IsCommutative() && len(ops1) == 2 && len(ops2) == 2 {
		direct, swapped := 0, 0
		if c.diverges(ops1[0], ops2[0]) {
			direct++
		}
		if c.diverges(ops1[1], ops2[1]) {
			direct++
		}
		if c.diverges(ops1[0], ops2[1]) {
			swapped++
		}
		if c.diverges(ops1[1], ops2[0]) {
			swapped++
		}
		return min(direct, swapped)
	}
	n := 0
	for k := range ops1 {
		if k < len(ops2) && c.diverges(ops1[k], ops2[k]) {
			n++
		}
	}
	return n
}

// divergingTargets collects the distinct diverging label-operand pairs of a
// matched column into set (allocated lazily). Each pair the merger cannot
// share becomes one memoized dispatch block (dispatchBlock); the value maps
// are injective on blocks, so distinct original pairs stay distinct merged
// pairs.
func (c *boundCtx) divergingTargets(i1, i2 *ir.Inst, set map[[2]*ir.Block]bool) map[[2]*ir.Block]bool {
	ops1, ops2 := i1.Operands(), i2.Operands()
	for k := range ops1 {
		if k >= len(ops2) {
			break
		}
		b1, ok1 := ops1[k].(*ir.Block)
		b2, ok2 := ops2[k].(*ir.Block)
		if !ok1 || !ok2 || c.matchedB[b1] == b2 {
			continue
		}
		if set == nil {
			set = make(map[[2]*ir.Block]bool, 4)
		}
		set[[2]*ir.Block{b1, b2}] = true
	}
	return set
}

// hasConstBranch reports whether the sequence contains a conditional branch
// or switch on an integer constant — the trigger of SimplifyCFG's
// constant-branch folding, whose unreachable-block cascade can delete
// arbitrarily many cloned instructions.
func hasConstBranch(seq []linearize.Entry) bool {
	for _, e := range seq {
		if e.IsLabel() {
			continue
		}
		switch e.Inst.Op {
		case ir.OpBr:
			if e.Inst.NumOperands() == 3 {
				if _, ok := e.Inst.Operand(0).(*ir.ConstInt); ok {
					return true
				}
			}
		case ir.OpSwitch:
			if _, ok := e.Inst.Operand(0).(*ir.ConstInt); ok {
				return true
			}
		}
	}
	return false
}

// deltaLowerBound is the floor of delta(f, merged): per-call-site growth
// against the arity-floor call size, plus the thunk floor (without the
// non-negative return-cast term) when f cannot be deleted outright. Mirrors
// Result.delta term for term.
func deltaLowerBound(t tti.Target, f *ir.Func, s CallerStats, callLB int) int {
	lb := 0
	if s.Callers > 0 {
		oldCall := syntheticCall(f)
		growth := callLB - t.InstSize(oldCall)
		oldCall.Detach()
		if growth > 0 {
			lb += growth * s.Callers
		}
	}
	if f.Linkage == ir.InternalLinkage && !s.AddressTaken {
		return lb
	}
	return lb + t.FuncOverhead() + callLB + t.InstSize(ir.NewInst(ir.OpRet, ir.Void()))
}
