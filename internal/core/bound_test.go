package core

import (
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/passes"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// boundTargets are the cost models the admissibility property is checked
// against; the bound takes per-instruction floors from the target, so both
// must hold independently.
var boundTargets = []tti.Target{tti.X86{}, tti.Thumb{}}

// auditAllPairs merges every function pair of m (up to cap functions) with
// BoundAudit enabled and asserts the admissibility property — the bound must
// never be below the exact cost-model profit of the materialized merge.
// Returns how many pairs were audited and how many usable-bound-less merges
// (bail pairs) it saw.
func auditAllPairs(t *testing.T, m *ir.Module, target tti.Target, cap int) (audited, bailed int) {
	t.Helper()
	passes.DemotePhisModule(m)
	var funcs []*ir.Func
	for _, f := range m.Funcs {
		if !f.IsDecl() && !f.Sig().Variadic {
			funcs = append(funcs, f)
		}
	}
	if cap > 0 && len(funcs) > cap {
		funcs = funcs[:cap]
	}
	costs := tti.NewCostMemo()
	for i := 0; i < len(funcs); i++ {
		for j := i + 1; j < len(funcs); j++ {
			f1, f2 := funcs[i], funcs[j]
			called := false
			opts := DefaultOptions()
			opts.Prune = &PruneSpec{
				Target: target,
				S1:     SnapshotCallerStats(f1),
				S2:     SnapshotCallerStats(f2),
				Costs:  costs,
			}
			opts.BoundAudit = func(a, b *ir.Func, bound, exact int) {
				called = true
				if exact > bound {
					t.Errorf("inadmissible bound for %s + %s on %s: bound %d < exact profit %d",
						a.Name(), b.Name(), target.Name(), bound, exact)
				}
			}
			res, err := Merge(f1, f2, opts)
			if err != nil {
				continue
			}
			if called {
				audited++
			} else {
				bailed++
			}
			res.Discard()
		}
	}
	return audited, bailed
}

// TestBoundAdmissibilityWorkload sweeps every pair of two workload corpora
// under both cost-model targets: the profitability upper bound must dominate
// the exact profit on every pair the merger can materialize. This is the
// property that makes pre-codegen pruning decision-invisible.
func TestBoundAdmissibilityWorkload(t *testing.T) {
	profiles := workload.UnscaledSmall()
	for _, spec := range []struct {
		name string
		cap  int
	}{
		{"429.mcf", 0},   // 24 functions, full pairwise sweep
		{"433.milc", 40}, // capped: keeps the quadratic sweep fast
	} {
		var prof workload.Profile
		for _, p := range profiles {
			if p.Name == spec.name {
				prof = p
			}
		}
		if prof.Name == "" {
			t.Fatalf("profile %s missing from UnscaledSmall", spec.name)
		}
		for _, target := range boundTargets {
			t.Run(spec.name+"/"+target.Name(), func(t *testing.T) {
				m := workload.Build(prof)
				audited, _ := auditAllPairs(t, m, target, spec.cap)
				if audited == 0 {
					t.Fatal("no pairs audited; the sweep is vacuous")
				}
			})
		}
	}
}

// adversarialIR packs the shapes that historically endanger an admissible
// bound: external linkage (thunk term), an address-taken function (thunk
// despite internal linkage), exception handling (landingpad hoisting and
// gap-demoted pads), return-type disagreement (conversion thunks), and
// heavy branch scaffolding that SimplifyCFG later deletes.
const adversarialIR = `
declare void @throw()
declare void @sink(i64)

define i32 @ext1(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  %r = add i32 %x, 7
  ret i32 %r
b:
  %s = mul i32 %x, 3
  ret i32 %s
}

define i32 @ext2(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 1
  br i1 %c, label %a, label %b
a:
  %r = add i32 %x, 9
  ret i32 %r
b:
  %s = mul i32 %x, 5
  ret i32 %s
}

define internal f64 @retf(f64 %x) {
entry:
  %r = fadd f64 %x, 2.0
  ret f64 %r
}

define internal i32 @reti(i32 %x) {
entry:
  %r = add i32 %x, 2
  ret i32 %r
}

define internal void @taken(i64 %x) {
entry:
  call void @sink(i64 %x)
  ret void
}

define internal void @taken2(i64 %x) {
entry:
  %y = add i64 %x, 4
  call void @sink(i64 %y)
  ret void
}

define internal i32 @eh1(i32 %x) {
entry:
  %r = invoke i32 @ext1(i32 %x) to label %ok unwind label %lpad
ok:
  ret i32 %r
lpad:
  %lp = landingpad cleanup
  ret i32 -1
}

define internal i32 @eh2(i32 %x) {
entry:
  %r = invoke i32 @ext2(i32 %x) to label %ok unwind label %lpad
ok:
  %r2 = add i32 %r, 1
  ret i32 %r2
lpad:
  %lp = landingpad cleanup
  ret i32 -2
}

define void @use(i64 %x) {
entry:
  call void @taken(i64 %x)
  %p = ptrtoint void (i64)* @taken to i64
  call void @sink(i64 %p)
  ret void
}
`

// TestBoundAdmissibilityAdversarial runs the pairwise audit over IR chosen
// to stress every term of the bound: thunk costs, caller growth, EH
// scaffolding and return-type conversions, under both targets.
func TestBoundAdmissibilityAdversarial(t *testing.T) {
	for _, target := range boundTargets {
		t.Run(target.Name(), func(t *testing.T) {
			m := ir.MustParseModule("adversarial", adversarialIR)
			if err := ir.VerifyModule(m); err != nil {
				t.Fatal(err)
			}
			audited, _ := auditAllPairs(t, m, target, 0)
			if audited == 0 {
				t.Fatal("no pairs audited; the sweep is vacuous")
			}
		})
	}
}

// constBranchIR holds a pair whose bodies branch on integer constants —
// SimplifyCFG folds such branches and can cascade-delete arbitrary cloned
// blocks, so no sound per-column floor exists and bounding must bail
// (no prune, no audit report) rather than guess.
const constBranchIR = `
define internal i32 @cb1(i32 %x) {
entry:
  br i1 1, label %a, label %b
a:
  %r = add i32 %x, 1
  ret i32 %r
b:
  %s = add i32 %x, 2
  ret i32 %s
}

define internal i32 @cb2(i32 %x) {
entry:
  br i1 1, label %a, label %b
a:
  %r = mul i32 %x, 3
  ret i32 %r
b:
  %s = mul i32 %x, 4
  ret i32 %s
}
`

// TestBoundBailsOnConstantBranches pins the bail path: a constant-condition
// branch makes the pair unboundable, so with BoundAudit set the merge still
// materializes but the hook must not fire, and with pruning live the pair
// must never be skipped (CodegenSkips stays zero).
func TestBoundBailsOnConstantBranches(t *testing.T) {
	m := ir.MustParseModule("constbr", constBranchIR)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	audited, bailed := auditAllPairs(t, m, tti.X86{}, 0)
	if audited != 0 || bailed != 1 {
		t.Fatalf("constant-branch pair: audited %d, bailed %d; want 0 audited, 1 bailed", audited, bailed)
	}

	// Pruning live (no audit hook): the bail must translate into "never
	// pruned", not "pruned with a made-up bound".
	m2 := ir.MustParseModule("constbr2", constBranchIR)
	f1, f2 := m2.FuncByName("cb1"), m2.FuncByName("cb2")
	tm := &Timings{}
	opts := DefaultOptions()
	opts.Timings = tm
	opts.Prune = &PruneSpec{
		Target: tti.X86{},
		S1:     SnapshotCallerStats(f1),
		S2:     SnapshotCallerStats(f2),
		Costs:  tti.NewCostMemo(),
		// Even an absurd threshold must not prune an unboundable pair.
		MinProfit: 1 << 20,
	}
	res, err := Merge(f1, f2, opts)
	if err != nil {
		t.Fatalf("unboundable pair must not be pruned: %v", err)
	}
	res.Discard()
	if tm.CodegenSkips != 0 {
		t.Fatalf("CodegenSkips = %d on a bail pair, want 0", tm.CodegenSkips)
	}
}

// TestPruneSkipsHopelessPair pins the skip path end to end: with an
// unreachable MinProfit every boundable pair must return ErrHopeless and
// count a CodegenSkip, without materializing a merged function.
func TestPruneSkipsHopelessPair(t *testing.T) {
	m := ir.MustParseModule("adversarial", adversarialIR)
	f1, f2 := m.FuncByName("ext1"), m.FuncByName("ext2")
	before := len(m.Funcs)
	tm := &Timings{}
	opts := DefaultOptions()
	opts.Timings = tm
	opts.Prune = &PruneSpec{
		Target:    tti.X86{},
		S1:        SnapshotCallerStats(f1),
		S2:        SnapshotCallerStats(f2),
		Costs:     tti.NewCostMemo(),
		MinProfit: 1 << 20,
	}
	res, err := Merge(f1, f2, opts)
	if err != ErrHopeless {
		if err == nil {
			res.Discard()
		}
		t.Fatalf("err = %v, want ErrHopeless", err)
	}
	if tm.BoundEvals != 1 || tm.CodegenSkips != 1 {
		t.Fatalf("counters = %d evals / %d skips, want 1/1", tm.BoundEvals, tm.CodegenSkips)
	}
	if len(m.Funcs) != before {
		t.Fatalf("pruned merge mutated the module: %d funcs, want %d", len(m.Funcs), before)
	}
}
