package core

import (
	"sync/atomic"
	"time"

	"fmsa/internal/align"
	"fmsa/internal/encode"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
)

// Timings accumulates wall-clock time per merge phase, feeding the Fig. 13
// compile-time breakdown, plus the alignment-kernel counters behind the
// fmsa-bench perf lines.
//
// Concurrency contract: one Timings value may be shared by any number of
// concurrent Merge calls — Merge only ever accumulates through the atomic
// Add* methods. Reading the fields directly is safe only once every merge
// sharing the value has returned (the exploration framework reads them once,
// after its final commit). Under parallel exploration the fields sum CPU
// time across workers, so per-phase totals can exceed wall-clock time.
type Timings struct {
	Linearize time.Duration
	Align     time.Duration
	CodeGen   time.Duration

	// AlignCells counts dynamic-programming cells actually computed (n·m per
	// kernel invocation; memo hits add nothing). With caches on, the counters
	// below depend on speculative-attempt scheduling, so their values may
	// vary with the worker count even though the merge results never do.
	AlignCells int64
	// SeqCacheHits/Misses count Options.SeqProvider lookups.
	SeqCacheHits, SeqCacheMisses int64
	// AlignMemoHits/Misses count Options.AlignMemo lookups.
	AlignMemoHits, AlignMemoMisses int64
	// BoundEvals counts pre-codegen profitability-bound evaluations and
	// CodegenSkips the subset that pruned code generation (Options.Prune).
	// Like the cache counters, with Workers > 1 the values depend on how
	// many speculative attempts ran, so they may vary across worker counts
	// even though the merge results never do.
	BoundEvals, CodegenSkips int64

	// Verify accumulates time spent in the opt-in IR verification gates
	// (explore.Options.Verify); VerifyFuncs counts verified functions and
	// VerifyDiags the findings they produced (zero on a healthy pipeline).
	Verify                   time.Duration
	VerifyFuncs, VerifyDiags int64
}

// AddLinearize atomically accumulates linearization time.
func (t *Timings) AddLinearize(d time.Duration) {
	atomic.AddInt64((*int64)(&t.Linearize), int64(d))
}

// AddAlign atomically accumulates alignment time.
func (t *Timings) AddAlign(d time.Duration) {
	atomic.AddInt64((*int64)(&t.Align), int64(d))
}

// AddCodeGen atomically accumulates code-generation time.
func (t *Timings) AddCodeGen(d time.Duration) {
	atomic.AddInt64((*int64)(&t.CodeGen), int64(d))
}

// AddAlignCells atomically accumulates computed DP cells.
func (t *Timings) AddAlignCells(n int64) {
	atomic.AddInt64(&t.AlignCells, n)
}

// CountSeqCache atomically records one linearization-cache lookup.
func (t *Timings) CountSeqCache(hit bool) {
	if hit {
		atomic.AddInt64(&t.SeqCacheHits, 1)
	} else {
		atomic.AddInt64(&t.SeqCacheMisses, 1)
	}
}

// CountAlignMemo atomically records one alignment-memo lookup.
func (t *Timings) CountAlignMemo(hit bool) {
	if hit {
		atomic.AddInt64(&t.AlignMemoHits, 1)
	} else {
		atomic.AddInt64(&t.AlignMemoMisses, 1)
	}
}

// AddVerify atomically accumulates IR-verification time.
func (t *Timings) AddVerify(d time.Duration) {
	atomic.AddInt64((*int64)(&t.Verify), int64(d))
}

// CountVerify atomically records verified functions and their finding count.
func (t *Timings) CountVerify(funcs, diags int) {
	atomic.AddInt64(&t.VerifyFuncs, int64(funcs))
	atomic.AddInt64(&t.VerifyDiags, int64(diags))
}

// CountBound atomically records one profitability-bound evaluation and
// whether it pruned code generation.
func (t *Timings) CountBound(pruned bool) {
	atomic.AddInt64(&t.BoundEvals, 1)
	if pruned {
		atomic.AddInt64(&t.CodegenSkips, 1)
	}
}

// AlignFunc is the signature of a pairwise global-alignment algorithm.
type AlignFunc func(n, m int, eq align.EqFunc, sc align.Scoring) []align.Step

// AlignMemo caches raw kernel results keyed by the content of the two code
// sequences. Implementations must be safe for concurrent use and must verify
// full code equality on hash hits (hash equality is only a hint); the steps
// they return are shared read-only across merges (Merge never mutates them —
// DecomposeMismatches allocates a fresh slice).
type AlignMemo interface {
	// Lookup returns the memoized steps for the pair, if present.
	Lookup(a, b *encode.Encoded) ([]align.Step, bool)
	// Store memoizes the steps for the pair. Implementations must copy
	// a.Codes and b.Codes if they retain them — the caller may recycle the
	// Encoded values after the merge.
	Store(a, b *encode.Encoded, steps []align.Step)
}

// Options configures a merge operation. The zero value is not usable; start
// from DefaultOptions.
type Options struct {
	// Scoring is the alignment scoring scheme.
	Scoring align.Scoring
	// Align is the alignment algorithm (defaults to align.Align, which
	// picks Needleman–Wunsch or Hirschberg by problem size).
	Align AlignFunc
	// AlignCoded, when non-nil, is the coded fast path used instead of Align
	// whenever both sequences carry equivalence codes: no per-cell closure
	// calls, and alignment-memo eligibility. It MUST be the exact coded twin
	// of Align (bit-identical []Step on equivalent inputs) — callers that
	// override Align with an algorithm lacking a coded twin must set
	// AlignCoded to nil, or the override is silently bypassed.
	AlignCoded align.CodedFunc
	// Order is the linearization traversal order (paper default: RPO).
	Order linearize.Order
	// ReuseParams enables sharing parameters of identical type between the
	// two merged functions (§III-E, Fig. 6). Disabling it is the
	// parameter-merging ablation.
	ReuseParams bool
	// NamePrefix prefixes generated merged-function names.
	NamePrefix string
	// Timings, when non-nil, accumulates per-phase wall-clock time.
	Timings *Timings
	// SeqProvider, when non-nil, returns a cached linearization (and, on the
	// coded path, encoding) of f under Order, or nil to make Merge linearize
	// inline; a caching provider may also compute on miss and never return
	// nil. Returned values are borrowed: Merge never mutates or recycles
	// them, so one cache entry may serve many concurrent merges. The
	// provider accounts its own SeqCacheHits/Misses (Timings.CountSeqCache).
	SeqProvider func(f *ir.Func) *encode.Encoded
	// Interner supplies equivalence codes for inline (provider-miss)
	// encoding on the coded path. Nil means the shared process-wide table.
	Interner *encode.Interner
	// AlignMemo, when non-nil, caches coded-kernel results across merges.
	// Only consulted on the coded path — memo keys are code contents.
	AlignMemo AlignMemo
	// Prune, when non-nil, enables pre-codegen profitability bounding:
	// Merge evaluates the admissible profit upper bound right after
	// alignment and returns ErrHopeless — skipping code generation — when
	// the bound proves the profit cannot exceed Prune.MinProfit. Pruning
	// never changes merge decisions: a pruned pair is one the exact cost
	// model (evaluated with the same Target and CallerStats) would reject.
	Prune *PruneSpec
	// BoundAudit, when non-nil, turns pruning into a differential check:
	// Merge computes the bound, still generates the merged function, and on
	// success reports (bound, exact profit) to the hook. Requires Prune for
	// the cost-model inputs; pairs where bounding bails (constant-branch
	// hazard) are not reported. The hook may be called from concurrent
	// merges and must be safe for that.
	BoundAudit func(f1, f2 *ir.Func, bound, exact int)
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Scoring:     align.DefaultScoring,
		Align:       align.Align,
		AlignCoded:  align.AlignCodes,
		Order:       linearize.OrderRPO,
		ReuseParams: true,
		NamePrefix:  "__merged",
	}
}

// Stats describes one merge operation, for reporting and for the
// compile-time breakdown experiment (Fig. 13).
type Stats struct {
	// Len1 and Len2 are the linearized sequence lengths.
	Len1, Len2 int
	// MatchedColumns counts aligned columns emitted once.
	MatchedColumns int
	// GapColumns counts columns unique to one function.
	GapColumns int
	// Selects counts operand-select instructions inserted.
	Selects int
	// DispatchBlocks counts label-disagreement dispatch blocks inserted.
	DispatchBlocks int
	// HasFuncID reports whether the merged function needed the
	// function-identifier parameter.
	HasFuncID bool
}
