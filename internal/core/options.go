package core

import (
	"sync/atomic"
	"time"

	"fmsa/internal/align"
	"fmsa/internal/linearize"
)

// Timings accumulates wall-clock time per merge phase, feeding the Fig. 13
// compile-time breakdown.
//
// Concurrency contract: one Timings value may be shared by any number of
// concurrent Merge calls — Merge only ever accumulates through the atomic
// Add* methods. Reading the fields directly is safe only once every merge
// sharing the value has returned (the exploration framework reads them once,
// after its final commit). Under parallel exploration the fields sum CPU
// time across workers, so per-phase totals can exceed wall-clock time.
type Timings struct {
	Linearize time.Duration
	Align     time.Duration
	CodeGen   time.Duration
}

// AddLinearize atomically accumulates linearization time.
func (t *Timings) AddLinearize(d time.Duration) {
	atomic.AddInt64((*int64)(&t.Linearize), int64(d))
}

// AddAlign atomically accumulates alignment time.
func (t *Timings) AddAlign(d time.Duration) {
	atomic.AddInt64((*int64)(&t.Align), int64(d))
}

// AddCodeGen atomically accumulates code-generation time.
func (t *Timings) AddCodeGen(d time.Duration) {
	atomic.AddInt64((*int64)(&t.CodeGen), int64(d))
}

// AlignFunc is the signature of a pairwise global-alignment algorithm.
type AlignFunc func(n, m int, eq align.EqFunc, sc align.Scoring) []align.Step

// Options configures a merge operation. The zero value is not usable; start
// from DefaultOptions.
type Options struct {
	// Scoring is the alignment scoring scheme.
	Scoring align.Scoring
	// Align is the alignment algorithm (defaults to align.Align, which
	// picks Needleman–Wunsch or Hirschberg by problem size).
	Align AlignFunc
	// Order is the linearization traversal order (paper default: RPO).
	Order linearize.Order
	// ReuseParams enables sharing parameters of identical type between the
	// two merged functions (§III-E, Fig. 6). Disabling it is the
	// parameter-merging ablation.
	ReuseParams bool
	// NamePrefix prefixes generated merged-function names.
	NamePrefix string
	// Timings, when non-nil, accumulates per-phase wall-clock time.
	Timings *Timings
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Scoring:     align.DefaultScoring,
		Align:       align.Align,
		Order:       linearize.OrderRPO,
		ReuseParams: true,
		NamePrefix:  "__merged",
	}
}

// Stats describes one merge operation, for reporting and for the
// compile-time breakdown experiment (Fig. 13).
type Stats struct {
	// Len1 and Len2 are the linearized sequence lengths.
	Len1, Len2 int
	// MatchedColumns counts aligned columns emitted once.
	MatchedColumns int
	// GapColumns counts columns unique to one function.
	GapColumns int
	// Selects counts operand-select instructions inserted.
	Selects int
	// DispatchBlocks counts label-disagreement dispatch blocks inserted.
	DispatchBlocks int
	// HasFuncID reports whether the merged function needed the
	// function-identifier parameter.
	HasFuncID bool
}
