package baseline

import (
	"testing"

	"fmsa/internal/explore"
	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

const identicalTrioIR = `
define internal i32 @dup1(i32 %x) {
entry:
  %a = add i32 %x, 7
  %b = mul i32 %a, %a
  ret i32 %b
}

define internal i32 @dup2(i32 %x) {
entry:
  %a = add i32 %x, 7
  %b = mul i32 %a, %a
  ret i32 %b
}

define internal i32 @dup3(i32 %x) {
entry:
  %a = add i32 %x, 7
  %b = mul i32 %a, %a
  ret i32 %b
}

define internal i32 @different(i32 %x) {
entry:
  %a = sub i32 %x, 7
  %b = mul i32 %a, 3
  ret i32 %b
}

define i32 @use(i32 %x) {
entry:
  %r1 = call i32 @dup1(i32 %x)
  %r2 = call i32 @dup2(i32 %x)
  %r3 = call i32 @dup3(i32 %x)
  %r4 = call i32 @different(i32 %x)
  %s1 = add i32 %r1, %r2
  %s2 = add i32 %s1, %r3
  %s3 = add i32 %s2, %r4
  ret i32 %s3
}
`

func TestIdenticalFoldsDuplicates(t *testing.T) {
	m := ir.MustParseModule("id", identicalTrioIR)
	mc := interp.NewMachine(m)
	before, err := mc.Run("use", 5)
	if err != nil {
		t.Fatal(err)
	}

	rep := RunIdentical(m, tti.X86{})
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify: %v", err)
	}
	if rep.MergeOps != 2 {
		t.Errorf("merge ops = %d, want 2 (three duplicates fold into one)", rep.MergeOps)
	}
	if rep.FullyRemoved != 2 {
		t.Errorf("fully removed = %d, want 2", rep.FullyRemoved)
	}
	if m.FuncByName("different") == nil {
		t.Error("non-duplicate function must survive")
	}
	if rep.SizeAfter >= rep.SizeBefore {
		t.Errorf("size must shrink: %d -> %d", rep.SizeBefore, rep.SizeAfter)
	}

	mc2 := interp.NewMachine(m)
	after, err := mc2.Run("use", 5)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("semantics changed: %d -> %d", before, after)
	}
}

func TestIdenticalRespectsConstantDifferences(t *testing.T) {
	m := ir.MustParseModule("c", `
define internal i32 @k10(i32 %x) {
entry:
  %r = mul i32 %x, 10
  ret i32 %r
}

define internal i32 @k20(i32 %x) {
entry:
  %r = mul i32 %x, 20
  ret i32 %r
}

define i32 @use(i32 %x) {
entry:
  %a = call i32 @k10(i32 %x)
  %b = call i32 @k20(i32 %x)
  %s = add i32 %a, %b
  ret i32 %s
}
`)
	rep := RunIdentical(m, tti.X86{})
	if rep.MergeOps != 0 {
		t.Errorf("constant-differing functions must not fold, got %d merges", rep.MergeOps)
	}
}

func TestFunctionsIdenticalPredicate(t *testing.T) {
	m := ir.MustParseModule("p", identicalTrioIR)
	d1, d2, diff := m.FuncByName("dup1"), m.FuncByName("dup2"), m.FuncByName("different")
	if !FunctionsIdentical(d1, d2) {
		t.Error("dup1 and dup2 must be identical")
	}
	if FunctionsIdentical(d1, diff) {
		t.Error("dup1 and different must not be identical")
	}
	if !FunctionsIdentical(d1, d1) {
		t.Error("function must be identical to itself")
	}
}

func TestIdenticalExternalLinkageThunk(t *testing.T) {
	src := `
define i64 @exp_a(i64 %x) {
entry:
  %r = add i64 %x, 100
  ret i64 %r
}

define i64 @exp_b(i64 %x) {
entry:
  %r = add i64 %x, 100
  ret i64 %r
}
`
	m := ir.MustParseModule("x", src)
	rep := RunIdentical(m, tti.X86{})
	if rep.MergeOps != 1 {
		t.Fatalf("merge ops = %d, want 1", rep.MergeOps)
	}
	if rep.FullyRemoved != 0 {
		t.Error("external functions must not be deleted")
	}
	b := m.FuncByName("exp_b")
	if b == nil || b.NumInsts() > 2 {
		t.Error("exp_b should be a two-instruction thunk")
	}
	mc := interp.NewMachine(m)
	got, err := mc.Run("exp_b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 101 {
		t.Errorf("thunk exp_b(1) = %d, want 101", got)
	}
}

// fig1PairIR reproduces the shape of the paper's Fig. 1 (different
// signatures) in minimal form.
const fig1PairIR = `
define internal i64 @addf32(i64 %g, f32 %v) {
entry:
  %b = bitcast f32 %v to i32
  %w = zext i32 %b to i64
  %r = add i64 %g, %w
  ret i64 %r
}

define internal i64 @addf64(i64 %g, f64 %v) {
entry:
  %b = bitcast f64 %v to i64
  %r = add i64 %g, %b
  ret i64 %r
}

define i64 @use(i64 %g) {
entry:
  %a = call i64 @addf32(i64 %g, f32 1.5)
  %b = call i64 @addf64(i64 %a, f64 2.5)
  ret i64 %b
}
`

// fig2PairIR reproduces the shape of Fig. 2 (same signature, extra block).
const fig2PairIR = `
declare i64 @ext_i64(i64)

define internal i64 @plain(i64 %x) {
entry:
  %a = mul i64 %x, 3
  %b = call i64 @ext_i64(i64 %a)
  ret i64 %b
}

define internal i64 @guarded(i64 %x) {
entry:
  %c = icmp eq i64 %x, 0
  br i1 %c, label %early, label %cont
early:
  ret i64 0
cont:
  %a = mul i64 %x, 3
  %b = call i64 @ext_i64(i64 %a)
  ret i64 %b
}

define i64 @use(i64 %x) {
entry:
  %a = call i64 @plain(i64 %x)
  %b = call i64 @guarded(i64 %a)
  ret i64 %b
}
`

func TestSOACannotMergeMotivatingExamples(t *testing.T) {
	m1 := ir.MustParseModule("f1", fig1PairIR)
	if SOAEligible(m1.FuncByName("addf32"), m1.FuncByName("addf64")) {
		t.Error("SOA must reject different signatures (Fig. 1)")
	}
	rep1 := RunSOA(m1, tti.X86{})
	if rep1.MergeOps != 0 {
		t.Errorf("SOA merged Fig. 1 shape: %d ops", rep1.MergeOps)
	}

	m2 := ir.MustParseModule("f2", fig2PairIR)
	if SOAEligible(m2.FuncByName("plain"), m2.FuncByName("guarded")) {
		t.Error("SOA must reject different CFGs (Fig. 2)")
	}
	rep2 := RunSOA(m2, tti.X86{})
	if rep2.MergeOps != 0 {
		t.Errorf("SOA merged Fig. 2 shape: %d ops", rep2.MergeOps)
	}
}

func TestSOAMergesSameShapePairs(t *testing.T) {
	src := `
define internal i64 @scale3(i64 %x, i64 %y) {
entry:
  %a = mul i64 %x, 3
  %b = add i64 %a, %y
  ret i64 %b
}

define internal i64 @scale9(i64 %x, i64 %y) {
entry:
  %a = mul i64 %x, 9
  %b = add i64 %a, %y
  ret i64 %b
}

define i64 @use(i64 %x) {
entry:
  %a = call i64 @scale3(i64 %x, i64 1)
  %b = call i64 @scale9(i64 %a, i64 2)
  %c = call i64 @scale3(i64 %b, i64 3)
  %d = call i64 @scale9(i64 %c, i64 4)
  %e = call i64 @scale3(i64 %d, i64 5)
  %f = call i64 @scale9(i64 %e, i64 6)
  %s = add i64 %f, %x
  ret i64 %s
}
`
	m := ir.MustParseModule("soa", src)
	mc := interp.NewMachine(m)
	before, err := mc.Run("use", 2)
	if err != nil {
		t.Fatal(err)
	}

	if !SOAEligible(m.FuncByName("scale3"), m.FuncByName("scale9")) {
		t.Fatal("same-shape pair must be SOA-eligible")
	}
	rep := RunSOA(m, tti.X86{})
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify: %v\n%s", err, ir.FormatModule(m))
	}
	if rep.MergeOps != 1 {
		t.Fatalf("merge ops = %d, want 1", rep.MergeOps)
	}
	mc2 := interp.NewMachine(m)
	after, err := mc2.Run("use", 2)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("SOA merge changed semantics: %d -> %d", before, after)
	}
}

func TestTechniquePowerOrdering(t *testing.T) {
	// On a clone-rich module: Identical ≤ SOA ≤ FMSA in size reduction —
	// the central claim of the paper's evaluation.
	profile := workload.Profile{
		Name: "power", NumFuncs: 40, AvgSize: 30, MaxSize: 100,
		Identical: 0.15, TypeVar: 0.12, CFGVar: 0.1, Partial: 0.08,
		InternalFrac: 0.8, Seed: 99,
	}
	reduction := func(run func(*ir.Module) *explore.Report) float64 {
		m := workload.Build(profile)
		rep := run(m)
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("post-verify: %v", err)
		}
		return rep.Reduction()
	}

	// Paper protocol (§V-A): Identical runs before both SOA and FMSA.
	ident := reduction(func(m *ir.Module) *explore.Report { return RunIdentical(m, tti.X86{}) })
	soa := reduction(func(m *ir.Module) *explore.Report {
		rep := RunIdentical(m, tti.X86{})
		rep.Add(RunSOA(m, tti.X86{}))
		return rep
	})
	fmsa := reduction(func(m *ir.Module) *explore.Report {
		rep := RunIdentical(m, tti.X86{})
		rep.Add(explore.Run(m, explore.DefaultOptions()))
		return rep
	})

	t.Logf("reduction: identical=%.2f%% soa=%.2f%% fmsa=%.2f%%", ident, soa, fmsa)
	if ident > soa+0.5 {
		t.Errorf("Identical (%.2f%%) should not beat SOA (%.2f%%)", ident, soa)
	}
	if soa > fmsa+0.5 {
		t.Errorf("SOA (%.2f%%) should not beat FMSA (%.2f%%)", soa, fmsa)
	}
	if fmsa <= ident {
		t.Errorf("FMSA (%.2f%%) must beat Identical (%.2f%%)", fmsa, ident)
	}
}
