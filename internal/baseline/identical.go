// Package baseline implements the two comparison techniques of the paper's
// evaluation (§V-A, §VI-A):
//
//   - Identical: LLVM's MergeFunctions-style folding of structurally
//     identical functions, discovered through hashing;
//   - SOA: the state of the art (von Koch et al., LCTES'14,
//     MergeSimilarFunctions), which merges functions with identical
//     signatures and isomorphic CFGs whose corresponding blocks have the
//     same length, guarding residual differences on a function identifier.
//
// Both return the same Report type as the explore package so the
// experiment harness can compare all three techniques uniformly.
package baseline

import (
	"hash/fnv"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/tti"
)

// RunIdentical folds groups of structurally identical functions: one
// representative survives, the others are deleted (internal, unreferenced)
// or turned into forwarding thunks. It mirrors LLVM's MergeFunctions pass.
func RunIdentical(m *ir.Module, target tti.Target) *explore.Report {
	rep := &explore.Report{SizeBefore: tti.ModuleSize(target, m)}
	start := time.Now()

	groups := map[uint64][]*ir.Func{}
	var order []uint64
	for _, f := range m.Funcs {
		if f.IsDecl() || f.Sig().Variadic {
			continue
		}
		h := hashFunc(f)
		if _, seen := groups[h]; !seen {
			order = append(order, h)
		}
		groups[h] = append(groups[h], f)
	}

	for _, h := range order {
		bucket := groups[h]
		// Partition the bucket into classes of truly identical functions
		// (hash collisions are resolved by the structural check).
		for len(bucket) > 1 {
			rep0 := bucket[0]
			rest := bucket[1:]
			bucket = bucket[:0]
			for _, g := range rest {
				if FunctionsIdentical(rep0, g) {
					foldInto(m, rep0, g, rep)
				} else {
					bucket = append(bucket, g)
				}
			}
		}
	}

	rep.Phases.UpdateCalls = time.Since(start)
	rep.SizeAfter = tti.ModuleSize(target, m)
	return rep
}

// foldInto redirects every use of dup to keep, then deletes dup or leaves a
// thunk.
func foldInto(m *ir.Module, keep, dup *ir.Func, rep *explore.Report) {
	dup.DropBody()
	// Replace direct calls and any other uses (identical signatures make
	// the function values interchangeable).
	ir.ReplaceAllUsesWith(dup, keep)
	rep.MergeOps++
	rep.Records = append(rep.Records, explore.MergeRecord{
		Merged: keep.Name(), F1: keep.Name(), F2: dup.Name(),
	})
	if dup.NumUses() == 0 && dup.Linkage == ir.InternalLinkage {
		m.RemoveFunc(dup)
		rep.FullyRemoved++
		return
	}
	// External linkage: leave a thunk.
	entry := dup.NewBlockIn("entry")
	bd := ir.NewBuilder(entry)
	args := make([]ir.Value, len(dup.Params))
	for i, p := range dup.Params {
		args[i] = p
	}
	call := bd.Call(keep, args...)
	if dup.ReturnType().IsVoid() {
		bd.Ret(nil)
	} else {
		bd.Ret(call)
	}
}

// hashFunc computes a structural hash over the linearized function:
// signature, opcodes, result types, predicates and constants. Identical
// functions hash equally; the converse is checked structurally.
func hashFunc(f *ir.Func) uint64 {
	h := fnv.New64a()
	write := func(s string) { h.Write([]byte(s)) }
	write(f.Sig().String())
	for _, e := range linearize.Linearize(f) {
		if e.IsLabel() {
			write("|L")
			continue
		}
		in := e.Inst
		write("|")
		write(in.Op.String())
		write(in.Type().String())
		if in.Pred != ir.PredInvalid {
			write(in.Pred.String())
		}
		if in.Alloc != nil {
			write(in.Alloc.String())
		}
		for _, c := range in.Clauses {
			write(c)
		}
		for _, op := range in.Operands() {
			switch v := op.(type) {
			case *ir.ConstInt:
				write("#")
				write(v.Ident())
			case *ir.ConstFloat:
				write("#f")
				write(v.Ident())
			case *ir.Func:
				write("@")
				write(v.Name())
			case *ir.Global:
				write("@g")
				write(v.Name())
			default:
				write("%")
				write(op.Type().String())
			}
		}
	}
	return h.Sum64()
}

// FunctionsIdentical reports whether two definitions are structurally
// identical: same signature and bodies that correspond exactly under a
// value renaming (LLVM MergeFunctions' equality).
func FunctionsIdentical(a, b *ir.Func) bool {
	if a.Sig() != b.Sig() || a.IsDecl() || b.IsDecl() {
		return false
	}
	sa := linearize.Linearize(a)
	sb := linearize.Linearize(b)
	if len(sa) != len(sb) {
		return false
	}
	vmap := map[ir.Value]ir.Value{}
	for i, p := range a.Params {
		vmap[p] = b.Params[i]
	}
	// First pass: map labels and instruction identities.
	for i := range sa {
		if sa[i].IsLabel() != sb[i].IsLabel() {
			return false
		}
		if sa[i].IsLabel() {
			vmap[sa[i].Block] = sb[i].Block
		} else {
			vmap[sa[i].Inst] = sb[i].Inst
		}
	}
	// Second pass: compare instructions under the mapping.
	for i := range sa {
		if sa[i].IsLabel() {
			continue
		}
		ia, ib := sa[i].Inst, sb[i].Inst
		if ia.Op != ib.Op || ia.Type() != ib.Type() ||
			ia.Pred != ib.Pred || ia.Alloc != ib.Alloc ||
			ia.NumOperands() != ib.NumOperands() {
			return false
		}
		if len(ia.Clauses) != len(ib.Clauses) {
			return false
		}
		for k := range ia.Clauses {
			if ia.Clauses[k] != ib.Clauses[k] {
				return false
			}
		}
		for k := 0; k < ia.NumOperands(); k++ {
			oa, ob := ia.Operand(k), ib.Operand(k)
			if mapped, ok := vmap[oa]; ok {
				if mapped != ob {
					return false
				}
				continue
			}
			// Constants, globals, functions: must be equal themselves.
			if oa == ob || ir.ConstantsEqual(oa, ob) {
				continue
			}
			return false
		}
	}
	return true
}
