package baseline

import (
	"time"

	"fmsa/internal/align"
	"fmsa/internal/core"
	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/passes"
	"fmsa/internal/tti"
)

// SOAEligible reports whether the state-of-the-art technique can merge the
// pair at all (von Koch et al., LCTES'14, as characterized in §VI-A):
//
//   - equivalent function types: same number, order and types of
//     parameters, same return type;
//   - isomorphic CFGs: the reverse post-order traversals pair up blocks
//     with identical successor structure;
//   - corresponding basic blocks contain exactly the same number of
//     instructions;
//   - corresponding instructions have equivalent result types and operand
//     types.
//
// Fig. 1's pair fails the signature test and Fig. 2's the isomorphism test,
// exactly as the paper describes.
func SOAEligible(a, b *ir.Func) bool {
	if a.Sig() != b.Sig() || a.IsDecl() || b.IsDecl() {
		return false
	}
	sa := linearize.Linearize(a)
	sb := linearize.Linearize(b)
	if len(sa) != len(sb) {
		return false
	}
	// Lockstep correspondence: labels with labels (same landing status and
	// the implied same block lengths), instructions with matching shapes.
	bmap := map[*ir.Block]*ir.Block{}
	for i := range sa {
		if sa[i].IsLabel() != sb[i].IsLabel() {
			return false
		}
		if sa[i].IsLabel() {
			la, lb := sa[i].Block, sb[i].Block
			if la.IsLandingBlock() != lb.IsLandingBlock() {
				return false
			}
			if len(la.Insts) != len(lb.Insts) {
				return false
			}
			bmap[la] = lb
			continue
		}
		ia, ib := sa[i].Inst, sb[i].Inst
		if ia.Type() != ib.Type() || ia.NumOperands() != ib.NumOperands() {
			return false
		}
		if ia.IsTerminator() != ib.IsTerminator() {
			return false
		}
		// Terminators must agree exactly in opcode so the CFGs stay
		// isomorphic.
		if ia.IsTerminator() && ia.Op != ib.Op {
			return false
		}
		for k := 0; k < ia.NumOperands(); k++ {
			oa, ob := ia.Operand(k), ib.Operand(k)
			ba, isBA := oa.(*ir.Block)
			bb, isBB := ob.(*ir.Block)
			if isBA != isBB {
				return false
			}
			if isBA {
				if mapped, ok := bmap[ba]; ok && mapped != bb {
					return false
				}
				continue
			}
			if oa.Type() != ob.Type() {
				return false
			}
		}
	}
	return true
}

// lockstepAlign produces the alignment the SOA technique implies: position i
// pairs with position i (match when equivalent, gap-pair otherwise). It is
// only used for pairs that passed SOAEligible.
func lockstepAlign(n, m int, eq align.EqFunc, sc align.Scoring) []align.Step {
	if n != m {
		// Not lockstep-mergeable; an all-gap alignment makes the merge
		// maximally unprofitable and it will be discarded.
		return align.DecomposeMismatches(alignAllGaps(n, m))
	}
	steps := make([]align.Step, 0, n)
	for i := 0; i < n; i++ {
		if eq(i, i) {
			steps = append(steps, align.Step{Op: align.OpMatch, I: i, J: i})
		} else {
			steps = append(steps,
				align.Step{Op: align.OpGapA, I: i, J: -1},
				align.Step{Op: align.OpGapB, I: -1, J: i})
		}
	}
	return steps
}

func alignAllGaps(n, m int) []align.Step {
	steps := make([]align.Step, 0, n+m)
	for i := 0; i < n; i++ {
		steps = append(steps, align.Step{Op: align.OpGapA, I: i, J: -1})
	}
	for j := 0; j < m; j++ {
		steps = append(steps, align.Step{Op: align.OpGapB, I: -1, J: j})
	}
	return steps
}

// RunSOA applies the state-of-the-art technique to the whole module:
// bucket by signature, find structurally similar pairs, merge them with a
// lockstep correspondence, guarding differing instructions on a function
// identifier. Merged functions change signature and therefore never
// re-merge — the limitation the paper calls out (§VI-A).
func RunSOA(m *ir.Module, target tti.Target) *explore.Report {
	rep := &explore.Report{SizeBefore: tti.ModuleSize(target, m)}
	start := time.Now()
	passes.DemotePhisModule(m)

	mergeOpts := core.DefaultOptions()
	mergeOpts.Align = lockstepAlign
	mergeOpts.AlignCoded = nil // no coded twin for the lockstep aligner
	mergeOpts.NamePrefix = "__soa_merged"
	mergeOpts.ReuseParams = true

	// Bucket by signature.
	buckets := map[*ir.Type][]*ir.Func{}
	var order []*ir.Type
	for _, f := range m.Funcs {
		if f.IsDecl() || f.Sig().Variadic {
			continue
		}
		if _, seen := buckets[f.Sig()]; !seen {
			order = append(order, f.Sig())
		}
		buckets[f.Sig()] = append(buckets[f.Sig()], f)
	}

	for _, sig := range order {
		bucket := buckets[sig]
		used := make([]bool, len(bucket))
		for i := 0; i < len(bucket); i++ {
			if used[i] {
				continue
			}
			for j := i + 1; j < len(bucket); j++ {
				if used[j] {
					continue
				}
				if !SOAEligible(bucket[i], bucket[j]) {
					continue
				}
				res, err := core.Merge(bucket[i], bucket[j], mergeOpts)
				rep.CandidatesEvaluated++
				if err != nil {
					continue
				}
				if profit := res.Profit(target); profit <= 0 {
					res.Discard()
					continue
				}
				profit := res.Profit(target)
				removed := res.Commit()
				rep.MergeOps++
				rep.FullyRemoved += removed
				rep.Records = append(rep.Records, explore.MergeRecord{
					Merged: res.Merged.Name(),
					F1:     bucket[i].Name(),
					F2:     bucket[j].Name(),
					Profit: profit,
				})
				used[i] = true
				used[j] = true
				break
			}
		}
	}

	rep.Phases.UpdateCalls = time.Since(start)
	rep.SizeAfter = tti.ModuleSize(target, m)
	return rep
}
