package global

import (
	"bytes"
	"fmt"

	"fmsa/internal/core"
	"fmsa/internal/ir"
	"fmsa/internal/passes"
	"fmsa/internal/tti"
)

// Options configure a global merging run.
type Options struct {
	// Target is the code-size cost model; nil means x86-64.
	Target tti.Target
	// Shards partitions round 2's pair evaluation into per-shard waves
	// (pairs owned by their F1 unit, units assigned round-robin). Any value
	// produces bit-identical results; <= 0 means 1.
	Shards int
	// Workers bounds goroutines in the summarize and evaluation fan-outs;
	// <= 0 means GOMAXPROCS. Results never depend on it.
	Workers int
	// MinJaccard / FoldMinInsts / LSH feed the planner (see PlanOptions).
	MinJaccard   float64
	FoldMinInsts int
	// NoBound disables the pre-codegen profitability bound (PR-5); pairs
	// the bound would prune are then rejected by the exact model instead.
	NoBound bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{} }

// MergeRecord is one committed transformation, in commit order. Records are
// bit-identical across shard and worker counts.
type MergeRecord struct {
	// Kind is "fold" (hash-identical body replaced by a thunk to the
	// leader) or "merge" (aligned pairwise merge).
	Kind string `json:"kind"`
	// Merged names the function the originals now forward to.
	Merged string `json:"merged"`
	// F1 and F2 qualify the originals as "unitIndex:name".
	F1 string `json:"f1"`
	F2 string `json:"f2"`
	// Profit is the modeled size saving (bytes for merges, instructions
	// for folds).
	Profit int `json:"profit"`
}

// Report summarizes one Run.
type Report struct {
	TUs, Shards, Funcs        int
	FoldGroups, FoldedFuncs   int
	PairsPlanned, PairsMerged int
	// ExactScoredPairs counts pairs that reached exact evaluation
	// (alignment + cost model); the monolithic pipeline's equivalent is
	// its exact-Jaccard ranking probes.
	ExactScoredPairs int
	// ProbePairs counts summary-estimate candidate comparisons.
	ProbePairs int
	// PrunedByBound counts evaluations the PR-5 bound cut short.
	PrunedByBound int64
	// AlignCells counts alignment DP cells computed.
	AlignCells int64
	Records    []MergeRecord
	// SizeBefore/SizeAfter are instruction totals across the units before
	// and after, SizeAfter measured on the linked result.
	SizeBefore, SizeAfter int
}

// pairState carries one planned pair through import → evaluate → commit.
type pairState struct {
	f1, f2 *ir.Func // f2 is the import clone when the pair crosses units
	clone  bool
	skip   bool
	res    *core.Result
	profit int
}

// Run executes the two-round protocol over units — each a translation unit
// that stays a separate module throughout — and returns the final linked
// module plus the report. The units are consumed.
//
// Determinism: round 1 summaries are per-function pure; the plan is a pure
// function of the summaries; all module mutations (fold commits, imports,
// pair commits, cleanup) happen serially in plan order; the parallel
// evaluation wave computes each pair's merge exactly once on bodies no
// other pair touches. Shards and Workers therefore batch work without
// influencing any result bit.
func Run(units []*ir.Module, opts Options) (*ir.Module, *Report, error) {
	if opts.Target == nil {
		opts.Target = tti.X86{}
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	workers := workerCount(opts.Workers)
	rep := &Report{TUs: len(units), Shards: opts.Shards}

	// Round 1: demote phis (core.Merge precondition, per-unit local), then
	// summarize in parallel.
	parallelFor(len(units), workers, func(i int) {
		passes.DemotePhisModule(units[i])
	})
	for _, u := range units {
		rep.SizeBefore += u.NumInsts()
		rep.Funcs += len(u.Definitions())
	}
	sums := Summarize(units, workers)

	plan := BuildPlan(sums, PlanOptions{
		MinJaccard:   opts.MinJaccard,
		FoldMinInsts: opts.FoldMinInsts,
	})
	rep.ProbePairs = plan.ProbePairs
	rep.PairsPlanned = len(plan.Pairs)

	resolve := func(r Ref) *ir.Func { return units[r.TU].FuncByName(r.Name) }

	// Fold commits, serial in plan order.
	for _, fold := range plan.Folds {
		committed := commitFold(units, fold, resolve, rep)
		if committed > 0 {
			rep.FoldGroups++
		}
	}

	// Pair imports, serial in plan order.
	states := make([]pairState, len(plan.Pairs))
	for i, pair := range plan.Pairs {
		states[i] = importPair(units, pair, resolve)
	}

	// Evaluation waves, one per shard. Every pair is evaluated exactly
	// once, on its own pristine pair of bodies, so neither the shard
	// barrier placement nor the worker interleaving can change an outcome.
	timings := &core.Timings{}
	memo := tti.NewCostMemo()
	stats := core.CallerStats{AddressTaken: true} // thunk-commit semantics
	for s := 0; s < opts.Shards; s++ {
		var wave []int
		for i, pair := range plan.Pairs {
			if pair.F1.TU%opts.Shards == s && !states[i].skip {
				wave = append(wave, i)
			}
		}
		parallelFor(len(wave), workers, func(w int) {
			st := &states[wave[w]]
			mo := core.DefaultOptions()
			mo.NamePrefix = "gm"
			mo.Timings = timings
			if !opts.NoBound {
				mo.Prune = &core.PruneSpec{
					Target: opts.Target, S1: stats, S2: stats, Costs: memo,
				}
			}
			res, err := core.Merge(st.f1, st.f2, mo)
			if err != nil {
				return
			}
			profit := res.ProfitWithStatsMemo(opts.Target, stats, stats, memo)
			if profit <= 0 {
				res.Discard()
				return
			}
			st.res, st.profit = res, profit
		})
	}
	for i := range states {
		if !states[i].skip {
			rep.ExactScoredPairs++
		}
	}

	// Pair commits, serial in plan order.
	for i, pair := range plan.Pairs {
		commitPair(units, pair, &states[i], rep)
	}

	// Cleanup: prune declarations orphaned by dropped bodies and skipped
	// imports, unit by unit.
	for _, u := range units {
		for _, f := range append([]*ir.Func(nil), u.Funcs...) {
			if f.IsDecl() && f.NumUses() == 0 {
				u.RemoveFunc(f)
			}
		}
	}

	rep.PrunedByBound = timings.CodegenSkips
	rep.AlignCells = timings.AlignCells

	linked, err := ir.LinkModules("global", units...)
	if err != nil {
		return nil, rep, fmt.Errorf("global: relink: %w", err)
	}
	rep.SizeAfter = linked.NumInsts()
	return linked, rep, nil
}

func qual(r Ref) string { return fmt.Sprintf("%d:%s", r.TU, r.Name) }

// commitFold thunks every validated member to the fold's leader, promoting
// and renaming the leader first when the plan calls for it. Returns the
// number of members committed.
func commitFold(units []*ir.Module, fold Fold, resolve func(Ref) *ir.Func, rep *Report) int {
	leader := resolve(fold.Leader)
	if leader == nil || leader.IsDecl() {
		return 0
	}
	leaderMod := units[fold.Leader.TU]
	if fold.NewName != "" {
		if leaderMod.FuncByName(fold.NewName) != nil {
			return 0 // planned name shadowed by a local declaration
		}
		leader.SetName(fold.NewName)
		leader.Linkage = ir.ExternalLinkage
	}
	leaderKey, leaderEq := AppendStableKey(nil, leader)
	if !leaderEq {
		return 0
	}

	committed := 0
	for _, mref := range fold.Members {
		member := resolve(mref)
		if member == nil || member.IsDecl() || member.Sig() != leader.Sig() {
			continue
		}
		// Hash equality planned the fold; byte equality of the canonical
		// keys commits it (FNV collisions must not change semantics).
		memberKey, memberEq := AppendStableKey(nil, member)
		if !memberEq || !bytes.Equal(leaderKey, memberKey) {
			continue
		}
		callee := leader
		if mref.TU != fold.Leader.TU {
			callee = externRef(units[mref.TU], leader.Name(), leader.Sig())
			if callee == nil {
				continue
			}
		}
		sizeBefore := member.NumInsts()
		member.DropBody()
		pmap := make([]int, len(member.Params))
		for i := range pmap {
			pmap[i] = i
		}
		core.ForwardThunk(member, callee, false, false, pmap)
		rep.Records = append(rep.Records, MergeRecord{
			Kind: "fold", Merged: leader.Name(),
			F1: qual(fold.Leader), F2: qual(mref),
			Profit: sizeBefore - member.NumInsts(),
		})
		rep.FoldedFuncs++
		committed++
	}
	return committed
}

// externRef returns a local way to reference the external symbol name with
// the given signature from unit u, creating a declaration on demand. It
// returns nil when an unrelated local symbol shadows the name.
func externRef(u *ir.Module, name string, sig *ir.Type) *ir.Func {
	if f := u.FuncByName(name); f != nil {
		if f.Sig() == sig && f.Linkage == ir.ExternalLinkage {
			return f
		}
		return nil
	}
	f := ir.NewFunc(name, sig)
	u.AddFunc(f)
	return f
}

// importPair resolves a planned pair's functions, cloning G into F1's unit
// when the pair crosses units. Import happens before any evaluation, so
// clones always capture pristine bodies.
func importPair(units []*ir.Module, pair Pair, resolve func(Ref) *ir.Func) pairState {
	f1, g := resolve(pair.F1), resolve(pair.G)
	if f1 == nil || g == nil || f1.IsDecl() || g.IsDecl() {
		return pairState{skip: true}
	}
	if !pair.CrossTU {
		return pairState{f1: f1, f2: g}
	}
	dstMod, gMod := units[pair.F1.TU], units[pair.G.TU]
	if dstMod.FuncByName(pair.MergedName) != nil || gMod.FuncByName(pair.MergedName) != nil {
		return pairState{skip: true} // planned merged name shadowed locally
	}

	// Map every function G's body references — including G itself for
	// recursion — to an external reference in the destination unit. A
	// shadowing internal symbol or a signature conflict kills the pair.
	vmap := map[ir.Value]ir.Value{}
	ok := true
	g.Insts(func(in *ir.Inst) {
		for _, op := range in.Operands() {
			switch v := op.(type) {
			case *ir.Func:
				if _, done := vmap[v]; done {
					continue
				}
				ref := externRef(dstMod, v.Name(), v.Sig())
				if ref == nil {
					ok = false
					continue
				}
				vmap[v] = ref
			case *ir.Global:
				ok = false // localOnly should have excluded this
			}
		}
	})
	if !ok {
		return pairState{skip: true}
	}

	clone := ir.NewFunc(dstMod.UniqueName("gm.in."+g.Name()), g.Sig())
	clone.Linkage = ir.InternalLinkage
	dstMod.AddFunc(clone)
	for i, p := range g.Params {
		clone.Params[i].SetName(p.Name())
		vmap[p] = clone.Params[i]
	}
	ir.CloneBody(g, clone, vmap)
	return pairState{f1: f1, f2: clone, clone: true}
}

// commitPair installs an accepted pair's merged function (promoting it to
// an external symbol for cross-unit pairs and thunking G in its home unit)
// or rolls back the import of a rejected one.
func commitPair(units []*ir.Module, pair Pair, st *pairState, rep *Report) {
	if st.skip {
		return
	}
	if st.res == nil {
		if st.clone {
			units[pair.F1.TU].RemoveFunc(st.f2)
		}
		return
	}
	res := st.res
	hasID, pmap2 := res.HasFuncID, append([]int(nil), res.ParamMap2...)
	res.Commit() // rewrites F1's callers, thunks or removes F1, removes the clone
	merged := res.Merged
	if pair.CrossTU {
		merged.SetName(pair.MergedName)
		merged.Linkage = ir.ExternalLinkage
		g := units[pair.G.TU].FuncByName(pair.G.Name)
		callee := externRef(units[pair.G.TU], pair.MergedName, merged.Sig())
		g.DropBody()
		core.ForwardThunk(g, callee, hasID, false, pmap2)
	}
	rep.PairsMerged++
	rep.Records = append(rep.Records, MergeRecord{
		Kind: "merge", Merged: merged.Name(),
		F1: qual(pair.F1), F2: qual(pair.G),
		Profit: st.profit,
	})
}
