package global

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/wire"
)

// workerCount resolves a Workers knob.
func workerCount(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) on up to w goroutines,
// claiming work from an atomic counter so uneven item costs balance.
func parallelFor(n, w int, fn func(int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Summarize is round 1: it computes one FuncSummary per definition across
// the units, fanning the per-function work (stable hash + MinHash
// signature) out over the worker pool. The result depends only on the
// units' contents and order — never on the worker count — because every
// slot is computed independently and written to its own index.
func Summarize(units []*ir.Module, workers int) []wire.TUSummary {
	type slot struct {
		tu int
		f  *ir.Func
	}
	var slots []slot
	tus := make([]wire.TUSummary, len(units))
	for t, u := range units {
		tus[t].Name = u.Name
		for _, f := range u.Funcs {
			if !f.IsDecl() {
				slots = append(slots, slot{t, f})
			}
		}
	}
	sums := make([]wire.FuncSummary, len(slots))
	parallelFor(len(slots), workerCount(workers), func(i int) {
		sums[i] = SummarizeFunc(slots[i].f)
	})
	for i, s := range slots {
		tus[s.tu].Funcs = append(tus[s.tu].Funcs, sums[i])
	}
	return tus
}

// SummarizeFunc builds one function's round-1 summary: the stable
// structural hash, the MinHash signature, the size, and the linkage/usage
// flags the round-2 planner consults. Warm merge sessions reuse it to keep
// a per-corpus summary table alive across submissions.
func SummarizeFunc(f *ir.Func) wire.FuncSummary {
	hash, selfEq := StableHash(f)
	sig := fingerprint.ComputeSignature(f)
	fs := wire.FuncSummary{
		Name:    f.Name(),
		Linkage: f.Linkage,
		Size:    f.NumInsts(),
		Hash:    hash,
		MinHash: sig[:],
	}
	if selfEq {
		fs.Flags |= wire.SumSelfEq
	}
	if f.Sig().Variadic {
		fs.Flags |= wire.SumVariadic
	}
	f.Insts(func(in *ir.Inst) {
		for _, op := range in.Operands() {
			switch v := op.(type) {
			case *ir.Global:
				fs.Flags |= wire.SumUsesGlobals
			case *ir.Func:
				if v.Linkage == ir.InternalLinkage {
					fs.Flags |= wire.SumUsesInternal
				}
			}
		}
	})
	return fs
}
