package global_test

import (
	"reflect"
	"testing"

	"fmsa/internal/core"
	"fmsa/internal/global"
	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/workload"
)

func corpusProfile(seed int64) workload.Profile {
	return workload.Profile{
		Name: "globaltest", NumFuncs: 40, AvgSize: 22, MaxSize: 64,
		Identical: 0.25, TypeVar: 0.1, CFGVar: 0.05, Partial: 0.1,
		InternalFrac: 0.4, Seed: seed,
	}
}

// buildUnits rebuilds the corpus from scratch and splits it — split is
// input-order invariant (TestSplitPermutationInvariant), so every call
// yields identical units.
func buildUnits(t testing.TB, seed int64, n int) []*ir.Module {
	t.Helper()
	units, err := ir.SplitModule(workload.Build(corpusProfile(seed)), n)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

func runMain(t *testing.T, m *ir.Module) uint64 {
	t.Helper()
	mc := interp.NewMachine(m)
	workload.RegisterIntrinsics(mc)
	v, err := mc.Run("main")
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return v
}

// TestGlobalShardDeterminism is the PR-1 determinism harness generalized to
// sharded cross-TU merging: every (shards, workers) combination must commit
// identical merge records and produce a byte-identical linked module.
func TestGlobalShardDeterminism(t *testing.T) {
	const nunits = 6
	type outcome struct {
		records []global.MergeRecord
		text    string
	}
	var base *outcome
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 2, 8} {
			opts := global.DefaultOptions()
			opts.Shards = shards
			opts.Workers = workers
			linked, rep, err := global.Run(buildUnits(t, 3, nunits), opts)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			got := &outcome{records: rep.Records, text: ir.FormatModule(linked)}
			if base == nil {
				base = got
				if len(rep.Records) == 0 {
					t.Fatal("corpus produced no merge records; determinism check is vacuous")
				}
				continue
			}
			if !reflect.DeepEqual(base.records, got.records) {
				t.Errorf("shards=%d workers=%d: merge records diverge from baseline", shards, workers)
			}
			if base.text != got.text {
				t.Errorf("shards=%d workers=%d: linked module text diverges from baseline", shards, workers)
			}
		}
	}
}

// TestGlobalPreservesSemantics interprets the program before and after the
// full two-round pipeline.
func TestGlobalPreservesSemantics(t *testing.T) {
	for _, seed := range []int64{3, 7} {
		want := runMain(t, workload.Build(corpusProfile(seed)))
		for _, nunits := range []int{1, 4, 8} {
			linked, _, err := global.Run(buildUnits(t, seed, nunits), global.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if diags := ir.VerifyModuleLevel(linked, ir.VerifyFull); len(diags) > 0 {
				t.Fatalf("seed=%d units=%d: %v", seed, nunits, diags[0])
			}
			if got := runMain(t, linked); got != want {
				t.Errorf("seed=%d units=%d: main() = %d, want %d", seed, nunits, got, want)
			}
		}
	}
}

// TestGlobalFoldsCrossTU pins the round-1/round-2 contract on a hand-built
// corpus: two structurally identical external functions in different units
// fold into one body plus a thunk, and the program still computes the same
// values.
func TestGlobalFoldsCrossTU(t *testing.T) {
	body := `
entry:
  %a = mul i64 %x, 3
  %b = add i64 %a, 7
  %c = xor i64 %b, %x
  %d = add i64 %c, %b
  ret i64 %d
}
`
	a := ir.MustParseModule("a", "define i64 @left(i64 %x) {"+body)
	b := ir.MustParseModule("b", "define i64 @right(i64 %x) {"+body)
	linked, rep, err := global.Run([]*ir.Module{a, b}, global.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FoldedFuncs != 1 || len(rep.Records) != 1 || rep.Records[0].Kind != "fold" {
		t.Fatalf("expected exactly one fold, got %+v", rep.Records)
	}
	mc := interp.NewMachine(linked)
	l, err := mc.Run("left", 11)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mc.Run("right", 11)
	if err != nil {
		t.Fatal(err)
	}
	if l != r {
		t.Errorf("left(11)=%d right(11)=%d diverge after folding", l, r)
	}
	// right must have become a forwarding thunk, not keep its body.
	if f := linked.FuncByName("right"); f == nil || f.NumInsts() > 2 {
		t.Errorf("right should be a thunk after the fold")
	}
}

// TestGlobalLocalOnlyNeverCrosses: functions referencing internal symbols
// must not fold or merge across units even when hashes collide by name.
func TestGlobalLocalOnlyNeverCrosses(t *testing.T) {
	mk := func(name, add string) *ir.Module {
		return ir.MustParseModule(name, `
define internal i64 @helper(i64 %x) {
entry:
  %r = add i64 %x, `+add+`
  ret i64 %r
}

define i64 @use_`+name+`(i64 %x) {
entry:
  %a = call i64 @helper(i64 %x)
  %b = mul i64 %a, 5
  %c = add i64 %b, %a
  %d = xor i64 %c, %b
  ret i64 %d
}
`)
	}
	a, b := mk("a", "1"), mk("b", "2")
	linked, _, err := global.Run([]*ir.Module{a, b}, global.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mc := interp.NewMachine(linked)
	ra, err := mc.Run("use_a", 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := mc.Run("use_b", 10)
	if err != nil {
		t.Fatal(err)
	}
	// use_a computes with helper(+1), use_b with helper(+2); a cross-unit
	// fold of the callers would collapse the two results.
	if ra == rb {
		t.Errorf("use_a and use_b collapsed (%d == %d): local-only caller crossed units", ra, rb)
	}
}

// TestGlobalReducesExactScoring checks the tentpole's efficiency claim on a
// corpus scale small enough for CI: summary-based planning must evaluate
// far fewer pairs exactly than the quadratic candidate space.
func TestGlobalReducesExactScoring(t *testing.T) {
	_, rep, err := global.Run(buildUnits(t, 3, 6), global.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	quad := rep.Funcs * (rep.Funcs - 1) / 2
	if rep.ExactScoredPairs*3 > quad {
		t.Errorf("exact-scored %d of %d possible pairs: summary pruning is not pruning",
			rep.ExactScoredPairs, quad)
	}
	if rep.PairsMerged == 0 && rep.FoldedFuncs == 0 {
		t.Error("pipeline committed nothing on a similarity-rich corpus")
	}
}

// FuzzStableHash fuzzes the satellite contract: equal stable hashes on
// self-comparable functions must imply column-for-column structural
// equality at core.EntriesEquivalent level, and hashing must be invariant
// under print→reparse.
func FuzzStableHash(f *testing.F) {
	profiles := []workload.Profile{
		{Name: "fz1", NumFuncs: 6, AvgSize: 10, MaxSize: 24, Identical: 0.5, Seed: 1},
		{Name: "fz2", NumFuncs: 6, AvgSize: 12, MaxSize: 24, TypeVar: 0.4, Seed: 2},
	}
	var seeds []string
	for _, p := range profiles {
		seeds = append(seeds, ir.FormatModule(workload.Build(p)))
	}
	for i, s := range seeds {
		f.Add(s, seeds[(i+1)%len(seeds)])
	}
	f.Fuzz(func(t *testing.T, text1, text2 string) {
		m1, err := ir.ParseModule("m1", text1)
		if err != nil {
			return
		}
		m2, err := ir.ParseModule("m2", text2)
		if err != nil {
			return
		}
		defs := append(m1.Definitions(), m2.Definitions()...)
		type hashed struct {
			f      *ir.Func
			hash   uint64
			selfEq bool
		}
		hs := make([]hashed, len(defs))
		for i, fn := range defs {
			h, eq := global.StableHash(fn)
			hs[i] = hashed{fn, h, eq}
		}
		for i := range hs {
			for j := i + 1; j < len(hs); j++ {
				a, b := hs[i], hs[j]
				if a.hash != b.hash || !a.selfEq || !b.selfEq {
					continue
				}
				if a.f.Sig() != b.f.Sig() {
					t.Fatalf("equal hash, different signatures: %s vs %s", a.f.Name(), b.f.Name())
				}
				sa, sb := linearize.Linearize(a.f), linearize.Linearize(b.f)
				if len(sa) != len(sb) {
					t.Fatalf("equal hash, different linearization lengths: %s vs %s", a.f.Name(), b.f.Name())
				}
				for k := range sa {
					if !core.EntriesEquivalent(sa[k], sb[k]) {
						t.Fatalf("equal hash, entries diverge at %d: %s vs %s", k, a.f.Name(), b.f.Name())
					}
				}
			}
		}
		// Print→reparse invariance on every definition.
		re, err := ir.ParseModule("re", ir.FormatModule(m1))
		if err != nil {
			t.Fatalf("reparse of printed module failed: %v", err)
		}
		for _, fn := range m1.Definitions() {
			h1, eq1 := global.StableHash(fn)
			rf := re.FuncByName(fn.Name())
			h2, eq2 := global.StableHash(rf)
			if h1 != h2 || eq1 != eq2 {
				t.Fatalf("hash not print-stable for %s: %016x/%v vs %016x/%v",
					fn.Name(), h1, eq1, h2, eq2)
			}
		}
	})
}
