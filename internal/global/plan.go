package global

import (
	"fmt"

	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/lsh"
	"fmsa/internal/wire"
)

// Ref names one summarized definition: the unit's index in the summary
// table and the function name within it.
type Ref struct {
	TU   int
	Name string
}

// Fold plans one hash-equality group: every member's body is replaced by a
// thunk forwarding to the leader. NewName, when non-empty, renames the
// leader (promoting it to external linkage) so members in other units can
// reference it without colliding with their own internal symbols.
type Fold struct {
	Leader  Ref
	Members []Ref
	NewName string
}

// Pair plans one optimistic merge: G is imported into F1's unit, merged
// against F1 there, and both originals become thunks. MergedName is the
// globally unique external name the merged body publishes when the pair
// crosses units (same-unit pairs keep an internal merged function).
type Pair struct {
	F1, G      Ref
	CrossTU    bool
	MergedName string
	Jaccard    float64
}

// Plan is the round-2 work list. It is a pure function of the summaries:
// no unit body, worker count or shard count feeds it, which is what makes
// sharded execution bit-identical by construction.
type Plan struct {
	Folds []Fold
	Pairs []Pair
	// ProbePairs counts LSH candidate pairs the planner considered with
	// summary MinHash estimates — the work that replaces the monolithic
	// pipeline's cross-shard exact scoring.
	ProbePairs int
}

// PlanOptions tune candidate selection.
type PlanOptions struct {
	// MinJaccard is the summary-estimate floor for planning a merge pair.
	// Zero means the default 0.5.
	MinJaccard float64
	// FoldMinInsts is the minimum definition size worth thunking to a
	// structurally identical leader. Zero means the default 4.
	FoldMinInsts int
	// LSH overrides the banding parameters; zero means lsh.DefaultParams.
	LSH lsh.Params
}

func (o *PlanOptions) defaults() {
	if o.MinJaccard <= 0 {
		o.MinJaccard = 0.5
	}
	if o.FoldMinInsts <= 0 {
		o.FoldMinInsts = 4
	}
	if o.LSH.Bands == 0 || o.LSH.Rows == 0 {
		o.LSH = lsh.DefaultParams()
	}
}

// localOnly reports that a function's behavior depends on module-local
// state, pinning any cross-unit role it could play.
func localOnly(fs *wire.FuncSummary) bool {
	return fs.Flags&(wire.SumUsesGlobals|wire.SumUsesInternal) != 0
}

// BuildPlan derives the round-2 work list from the round-1 summaries. The
// traversal order is the summaries' own order (unit index, then definition
// index), every grouping key is content-derived, and ties break on that
// global order — the plan is deterministic and shard-free.
func BuildPlan(tus []wire.TUSummary, opts PlanOptions) *Plan {
	opts.defaults()
	plan := &Plan{}

	// Flatten with global indices, and collect every definition name for
	// collision-free new-name selection.
	type entry struct {
		ref Ref
		fs  *wire.FuncSummary
	}
	var entries []entry
	defNames := map[string]bool{}
	internalDefs := map[int]map[string]bool{} // per TU: internal def names
	for t := range tus {
		internalDefs[t] = map[string]bool{}
		for i := range tus[t].Funcs {
			fs := &tus[t].Funcs[i]
			entries = append(entries, entry{Ref{t, fs.Name}, fs})
			defNames[fs.Name] = true
			if fs.Linkage == ir.InternalLinkage {
				internalDefs[t][fs.Name] = true
			}
		}
	}
	taken := func(name string) bool { return defNames[name] }
	freshName := func(base string) string {
		if !taken(base) {
			defNames[base] = true
			return base
		}
		for i := 1; ; i++ {
			name := fmt.Sprintf("%s.%d", base, i)
			if !taken(name) {
				defNames[name] = true
				return name
			}
		}
	}

	used := make([]bool, len(entries))
	foldable := func(e entry) bool {
		return e.fs.Flags&wire.SumSelfEq != 0 &&
			e.fs.Flags&wire.SumVariadic == 0 &&
			e.fs.Size >= opts.FoldMinInsts &&
			e.fs.Name != "main"
	}

	// Folds: group by stable hash. Local-only functions group per unit —
	// their bodies reference unit-local state, so equal hashes across units
	// do not mean equal behavior.
	groups := map[string][]int{}
	var groupOrder []string
	for gi, e := range entries {
		if !foldable(e) {
			continue
		}
		key := fmt.Sprintf("%016x", e.fs.Hash)
		if localOnly(e.fs) {
			key = fmt.Sprintf("%d/%s", e.ref.TU, key)
		}
		if _, ok := groups[key]; !ok {
			groupOrder = append(groupOrder, key)
		}
		groups[key] = append(groups[key], gi)
	}
	for _, key := range groupOrder {
		g := groups[key]
		if len(g) < 2 {
			continue
		}
		leader := entries[g[0]]
		crossTU := false
		for _, gi := range g[1:] {
			if entries[gi].ref.TU != leader.ref.TU {
				crossTU = true
			}
		}
		fold := Fold{Leader: leader.ref}
		leaderName := leader.fs.Name
		if crossTU && leader.fs.Linkage == ir.InternalLinkage {
			// Promote under a fresh content-derived name: the leader's own
			// name is unit-local and may shadow unrelated internals
			// elsewhere. External leaders keep their name — it is already
			// the global symbol other units link against.
			fold.NewName = freshName(fmt.Sprintf("gf.%016x", leader.fs.Hash))
			leaderName = fold.NewName
		}
		for _, gi := range g[1:] {
			m := entries[gi]
			if m.ref.TU != leader.ref.TU && internalDefs[m.ref.TU][leaderName] {
				// The member's unit defines an unrelated internal symbol
				// with the leader's name; a declaration cannot reach the
				// leader from there.
				continue
			}
			fold.Members = append(fold.Members, m.ref)
			used[gi] = true
		}
		if len(fold.Members) == 0 {
			continue
		}
		used[g[0]] = true
		plan.Folds = append(plan.Folds, fold)
	}

	// Pairs: LSH over the summary signatures, greedy forward matching in
	// global order, best candidate by (estimated Jaccard desc, index asc).
	index := lsh.New(opts.LSH)
	sigs := make([]*fingerprint.Signature, len(entries))
	for gi := range entries {
		if used[gi] {
			continue
		}
		e := entries[gi]
		if e.fs.Flags&wire.SumVariadic != 0 || e.fs.Name == "main" {
			continue
		}
		// The wire layer round-trips MinHash lanes without interpreting
		// them; validate the lane count here, where the signature becomes
		// an LSH key. Mismatched summaries (foreign lane counts) simply
		// never pair.
		if len(e.fs.MinHash) != fingerprint.SigLanes {
			continue
		}
		var sig fingerprint.Signature
		copy(sig[:], e.fs.MinHash)
		sigs[gi] = &sig
		index.Insert(int32(gi), sigs[gi])
	}
	for gi := range entries {
		if used[gi] || sigs[gi] == nil {
			continue
		}
		e := entries[gi]
		best, bestJac := -1, 0.0
		for _, cid := range index.Probe(sigs[gi], int32(gi)) {
			ci := int(cid)
			if ci <= gi || used[ci] || sigs[ci] == nil {
				continue
			}
			c := entries[ci]
			if c.ref.TU != e.ref.TU && localOnly(c.fs) {
				// Importing c would drag unit-local references along.
				continue
			}
			plan.ProbePairs++
			jac := fingerprint.EstimateJaccard(sigs[gi], sigs[ci])
			if jac > bestJac || (jac == bestJac && best != -1 && ci < best) {
				best, bestJac = ci, jac
			}
		}
		if best == -1 || bestJac < opts.MinJaccard {
			continue
		}
		g := entries[best]
		pair := Pair{
			F1: e.ref, G: g.ref,
			CrossTU: e.ref.TU != g.ref.TU,
			Jaccard: bestJac,
		}
		if pair.CrossTU {
			pair.MergedName = freshName(fmt.Sprintf("gm.%d.%s.%d.%s",
				e.ref.TU, e.ref.Name, g.ref.TU, g.ref.Name))
		}
		used[gi], used[best] = true, true
		plan.Pairs = append(plan.Pairs, pair)
	}
	return plan
}
