// Package global implements two-round optimistic cross-TU merging in the
// style of the Optimistic Global Function Merger: round 1 computes a
// structurally-stable hash and a compact summary per translation unit,
// round 2 plans folds and merge pairs against the global summary table and
// commits them per TU without any other TU's body present. Results are
// bit-identical for any shard count and any worker count — the plan is a
// pure function of the summaries, and summaries are order-free.
package global

import (
	"encoding/binary"
	"math"

	"fmsa/internal/ir"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv64(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// StableHash returns a position-independent structural hash of f's body:
// types by content (their canonical string form), local operands by
// definition index, and no dependence on the function's own name — two
// functions that differ only by name and local value names hash equal, in
// any translation unit and any process. The boolean mirrors the encode
// interner's fresh-code rule: when false (the function contains a phi or an
// invoke without a modeled landing pad), hash equality does NOT imply
// structural equality and the function must not fold.
func StableHash(f *ir.Func) (uint64, bool) {
	key, selfEq := AppendStableKey(nil, f)
	return fnv64(key), selfEq
}

// AppendStableKey appends f's canonical structural key to buf and reports
// whether key equality implies structural equality (see StableHash). Two
// definitions have equal keys iff they are column-for-column equivalent at
// the exact-operand level, which is strictly finer than the paper's §III-D
// instruction equivalence.
// HashStableKey condenses a key produced by AppendStableKey into the hash
// StableHash would return for the same function. Callers that need both the
// key bytes (for exact content comparison) and the hash (for table lookup)
// can build the key once and derive the hash from it.
func HashStableKey(key []byte) uint64 { return fnv64(key) }

func AppendStableKey(buf []byte, f *ir.Func) ([]byte, bool) {
	types := map[*ir.Type]uint64{}
	typeRef := func(t *ir.Type) uint64 {
		if t == nil {
			return 0
		}
		if r, ok := types[t]; ok {
			return r
		}
		r := fnv64([]byte(t.String()))
		types[t] = r
		return r
	}

	// Local definition indices: params first, then instructions in layout
	// order. Blocks by layout index.
	defIdx := map[ir.Value]int{}
	blkIdx := map[*ir.Block]int{}
	for i, p := range f.Params {
		defIdx[p] = i
	}
	n := len(f.Params)
	for bi, b := range f.Blocks {
		blkIdx[b] = bi
		for _, in := range b.Insts {
			defIdx[in] = n
			n++
		}
	}

	sig := f.Sig().String()
	buf = append(buf, 'F')
	buf = binary.AppendUvarint(buf, uint64(len(sig)))
	buf = append(buf, sig...)

	selfEq := true
	for _, b := range f.Blocks {
		buf = append(buf, 'B')
		for _, in := range b.Insts {
			switch in.Op {
			case ir.OpPhi:
				selfEq = false
			case ir.OpInvoke:
				lp := in.InvokeUnwind().Insts
				if len(lp) == 0 || lp[0].Op != ir.OpLandingPad {
					selfEq = false
				}
			}
			buf = append(buf, 'I', byte(in.Op))
			buf = binary.AppendUvarint(buf, typeRef(in.Type()))
			switch in.Op {
			case ir.OpICmp, ir.OpFCmp:
				buf = append(buf, byte(in.Pred))
			case ir.OpAlloca:
				buf = binary.AppendUvarint(buf, typeRef(in.Alloc))
			case ir.OpLandingPad:
				buf = binary.AppendUvarint(buf, uint64(len(in.Clauses)))
				for _, c := range in.Clauses {
					buf = binary.AppendUvarint(buf, uint64(len(c)))
					buf = append(buf, c...)
				}
			}
			buf = binary.AppendUvarint(buf, uint64(in.NumOperands()))
			for _, op := range in.Operands() {
				buf = appendOperandKey(buf, f, op, typeRef, defIdx, blkIdx)
			}
		}
	}
	return buf, selfEq
}

func appendOperandKey(buf []byte, f *ir.Func, op ir.Value,
	typeRef func(*ir.Type) uint64, defIdx map[ir.Value]int, blkIdx map[*ir.Block]int) []byte {
	switch v := op.(type) {
	case nil:
		return append(buf, 'z')
	case *ir.Block:
		buf = append(buf, 'b')
		return binary.AppendUvarint(buf, uint64(blkIdx[v]))
	case *ir.Param, *ir.Inst:
		buf = append(buf, 'l')
		return binary.AppendUvarint(buf, uint64(defIdx[op]))
	case *ir.Func:
		if v == f {
			// Self-reference: recursion hashes position-independently so
			// two structurally identical recursive functions still match.
			return append(buf, 's')
		}
		buf = append(buf, 'f')
		buf = binary.AppendUvarint(buf, uint64(len(v.Name())))
		return append(buf, v.Name()...)
	case *ir.Global:
		buf = append(buf, 'g')
		buf = binary.AppendUvarint(buf, uint64(len(v.Name())))
		return append(buf, v.Name()...)
	case *ir.ConstInt:
		buf = append(buf, 'c')
		buf = binary.AppendUvarint(buf, typeRef(v.Type()))
		return binary.AppendUvarint(buf, uint64(v.V))
	case *ir.ConstFloat:
		buf = append(buf, 'd')
		buf = binary.AppendUvarint(buf, typeRef(v.Type()))
		return binary.AppendUvarint(buf, math.Float64bits(v.V))
	case *ir.Undef:
		buf = append(buf, 'u')
		return binary.AppendUvarint(buf, typeRef(v.Type()))
	case *ir.ConstNull:
		buf = append(buf, 'n')
		return binary.AppendUvarint(buf, typeRef(v.Type()))
	default:
		// Unknown value kind: poison the key so it never matches anything.
		return append(buf, 0xff)
	}
}
