// Package global implements two-round optimistic cross-TU merging in the
// style of the Optimistic Global Function Merger: round 1 computes a
// structurally-stable hash and a compact summary per translation unit,
// round 2 plans folds and merge pairs against the global summary table and
// commits them per TU without any other TU's body present. Results are
// bit-identical for any shard count and any worker count — the plan is a
// pure function of the summaries, and summaries are order-free.
package global

import (
	"encoding/binary"
	"math"

	"fmsa/internal/ir"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv64 hashes a stable key: FNV-1a's xor-multiply round applied to 8-byte
// little-endian blocks instead of single bytes, with a final finalizer so
// block-local differences avalanche into the low bits too (a bare
// multiplicative chain only carries information upward). Eight bytes per
// multiply matters because keys are hashed twice per function on the warm
// path (once keying, once on lookup) over megabytes of corpus key bytes.
// Not interoperable with standard FNV-1a — the only on-disk carriers of
// these values are fmdb segments and .fmsum summaries, and both make the
// hash algorithm part of their format version (wire.DBVersion,
// wire.SumVersion): any change here must bump both so stale files are
// rejected instead of silently mis-comparing.
func fnv64(b []byte) uint64 {
	h := uint64(fnvOffset)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * fnvPrime
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	// 64-bit finalizer (xorshift-multiply, splitmix64 style).
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// StableHash returns a position-independent structural hash of f's body:
// types by content (their canonical string form), local operands by
// definition index, and no dependence on the function's own name — two
// functions that differ only by name and local value names hash equal, in
// any translation unit and any process. The boolean mirrors the encode
// interner's fresh-code rule: when false (the function contains a phi or an
// invoke without a modeled landing pad), hash equality does NOT imply
// structural equality and the function must not fold.
func StableHash(f *ir.Func) (uint64, bool) {
	key, selfEq := AppendStableKey(nil, f)
	return fnv64(key), selfEq
}

// AppendStableKey appends f's canonical structural key to buf and reports
// whether key equality implies structural equality (see StableHash). Two
// definitions have equal keys iff they are column-for-column equivalent at
// the exact-operand level, which is strictly finer than the paper's §III-D
// instruction equivalence.
// HashStableKey condenses a key produced by AppendStableKey into the hash
// StableHash would return for the same function. Callers that need both the
// key bytes (for exact content comparison) and the hash (for table lookup)
// can build the key once and derive the hash from it.
func HashStableKey(key []byte) uint64 { return fnv64(key) }

// typeKeyHash is the per-type hash folded into stable keys: the FNV-1a of
// the type's canonical textual form, cached on the interned type itself —
// the keyer is on the warm-startup hot path (internal/simdb staleness checks
// key every definition of the corpus), so types must not be re-spelled or
// re-hashed per function.
func typeKeyHash(t *ir.Type) uint64 {
	if t == nil {
		return 0
	}
	return t.ContentHash()
}

func AppendStableKey(buf []byte, f *ir.Func) ([]byte, bool) {
	// Local definition indices: params first (their slice position, which is
	// Param.Index), then instructions in layout order, and blocks by layout
	// index — all via the IR's ordinal scratch slots, so keying a function
	// allocates nothing beyond the caller's buffer. (The keyer is the
	// warm-startup staleness check over every definition of a corpus; even
	// one small map per function sustains enough GC churn to rival the
	// recompute it is there to avoid.)
	f.NumberLocals()

	// Types — including the function's own signature type — enter the key as
	// their fixed-width cached content hash, not their spelling: the append
	// is branch-free (a uvarint of a 64-bit hash is a ten-iteration loop and
	// ten bytes), and the 2^-64 collision risk is the same one every other
	// type position in the key already carries.
	buf = append(buf, 'F')
	buf = binary.LittleEndian.AppendUint64(buf, typeKeyHash(f.Sig()))

	selfEq := true
	for _, b := range f.Blocks {
		buf = append(buf, 'B')
		for _, in := range b.Insts {
			switch in.Op {
			case ir.OpPhi:
				selfEq = false
			case ir.OpInvoke:
				lp := in.InvokeUnwind().Insts
				if len(lp) == 0 || lp[0].Op != ir.OpLandingPad {
					selfEq = false
				}
			}
			buf = append(buf, 'I', byte(in.Op))
			buf = binary.LittleEndian.AppendUint64(buf, typeKeyHash(in.Type()))
			switch in.Op {
			case ir.OpICmp, ir.OpFCmp:
				buf = append(buf, byte(in.Pred))
			case ir.OpAlloca:
				buf = binary.LittleEndian.AppendUint64(buf, typeKeyHash(in.Alloc))
			case ir.OpLandingPad:
				buf = binary.AppendUvarint(buf, uint64(len(in.Clauses)))
				for _, c := range in.Clauses {
					buf = binary.AppendUvarint(buf, uint64(len(c)))
					buf = append(buf, c...)
				}
			}
			buf = binary.AppendUvarint(buf, uint64(in.NumOperands()))
			for _, op := range in.Operands() {
				buf = appendOperand(buf, f, op)
			}
		}
	}
	return buf, selfEq
}

func appendOperand(buf []byte, f *ir.Func, op ir.Value) []byte {
	switch v := op.(type) {
	case nil:
		return append(buf, 'z')
	case *ir.Block:
		buf = append(buf, 'b')
		return binary.AppendUvarint(buf, uint64(v.LayoutOrd()))
	case *ir.Inst:
		buf = append(buf, 'l')
		return binary.AppendUvarint(buf, uint64(v.LocalOrd()))
	case *ir.Param:
		buf = append(buf, 'l')
		return binary.AppendUvarint(buf, uint64(v.Index))
	case *ir.Func:
		if v == f {
			// Self-reference: recursion hashes position-independently so
			// two structurally identical recursive functions still match.
			return append(buf, 's')
		}
		buf = append(buf, 'f')
		buf = binary.AppendUvarint(buf, uint64(len(v.Name())))
		return append(buf, v.Name()...)
	case *ir.Global:
		buf = append(buf, 'g')
		buf = binary.AppendUvarint(buf, uint64(len(v.Name())))
		return append(buf, v.Name()...)
	case *ir.ConstInt:
		buf = append(buf, 'c')
		buf = binary.LittleEndian.AppendUint64(buf, typeKeyHash(v.Type()))
		return binary.AppendUvarint(buf, uint64(v.V))
	case *ir.ConstFloat:
		buf = append(buf, 'd')
		buf = binary.LittleEndian.AppendUint64(buf, typeKeyHash(v.Type()))
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.V))
	case *ir.Undef:
		buf = append(buf, 'u')
		return binary.LittleEndian.AppendUint64(buf, typeKeyHash(v.Type()))
	case *ir.ConstNull:
		buf = append(buf, 'n')
		return binary.LittleEndian.AppendUint64(buf, typeKeyHash(v.Type()))
	default:
		// Unknown value kind: poison the key so it never matches anything.
		return append(buf, 0xff)
	}
}
