package profile

import (
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

func TestCollectAssignsHotness(t *testing.T) {
	m := ir.MustParseModule("p", `
define internal i64 @hotloop(i64 %n) {
entry:
  %i = alloca i64
  store i64 0, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %c = icmp slt i64 %iv, %n
  br i1 %c, label %body, label %done
body:
  %iv2 = add i64 %iv, 1
  store i64 %iv2, i64* %i
  br label %head
done:
  ret i64 %iv
}

define internal i64 @coldleaf(i64 %x) {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}

define i64 @main() {
entry:
  %h = call i64 @hotloop(i64 1000)
  %c = call i64 @coldleaf(i64 %h)
  ret i64 %c
}
`)
	if err := Collect(m, "main", nil); err != nil {
		t.Fatal(err)
	}
	hot := m.FuncByName("hotloop").Hotness
	cold := m.FuncByName("coldleaf").Hotness
	if hot <= cold {
		t.Errorf("hotloop (%d) must be hotter than coldleaf (%d)", hot, cold)
	}
	if cold == 0 {
		t.Error("executed function must have nonzero hotness")
	}
}

func TestHotThreshold(t *testing.T) {
	m := ir.NewModule("h")
	for i, h := range []uint64{1000, 100, 10, 5, 1} {
		f := m.NewFuncIn(string(rune('a'+i)), ir.FuncOf(ir.Void()))
		b := f.NewBlockIn("entry")
		ir.NewBuilder(b).Ret(nil)
		f.Hotness = h
	}
	// Excluding the top 20% (1 of 5) should produce a cutoff below 1000.
	cut := HotThreshold(m, 0.2)
	if cut >= 1000 || cut < 100 {
		t.Errorf("cutoff = %d, want in [100, 1000)", cut)
	}
	if HotThreshold(m, 0) != 0 {
		t.Error("zero fraction must disable exclusion")
	}
}

func TestCollectOnWorkload(t *testing.T) {
	p := workload.Profile{
		Name: "prof", NumFuncs: 10, AvgSize: 20, MaxSize: 60,
		InternalFrac: 0.5, Seed: 3,
	}
	m := workload.Build(p)
	if err := Collect(m, "main", workload.RegisterIntrinsics); err != nil {
		t.Fatal(err)
	}
	any := false
	for _, f := range m.Funcs {
		if f.Hotness > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no function received hotness")
	}
}
