// Package profile derives function hotness from interpreter runs, the
// stand-in for the paper's profiling information (§V-D): "through
// profiling, we discovered that a handful of them contain hot code...
// if we prevent these hot functions from merging, all performance impact
// is removed".
package profile

import (
	"fmt"
	"sort"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
)

// Collect executes entry (usually "main") under a profiling interpreter and
// stores each function's total executed-block count in Func.Hotness.
// setup, when non-nil, registers workload intrinsics on the machine.
func Collect(m *ir.Module, entry string, setup func(*interp.Machine)) error {
	mc := interp.NewMachine(m)
	mc.Profile = true
	if setup != nil {
		setup(mc)
	}
	if _, err := mc.Run(entry); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	Apply(m, mc.BlockCounts)
	return nil
}

// Apply aggregates block counts into per-function hotness values.
func Apply(m *ir.Module, counts map[*ir.Block]uint64) {
	for _, f := range m.Funcs {
		var total uint64
		for _, b := range f.Blocks {
			total += counts[b] * uint64(len(b.Insts))
		}
		f.Hotness = total
	}
}

// HotThreshold returns a hotness cutoff excluding roughly the given top
// fraction of functions by hotness (e.g. 0.1 excludes the hottest 10%).
// It returns 0 (no exclusion) for an empty module or fraction <= 0.
func HotThreshold(m *ir.Module, topFraction float64) uint64 {
	if topFraction <= 0 {
		return 0
	}
	var hot []uint64
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			hot = append(hot, f.Hotness)
		}
	}
	if len(hot) == 0 {
		return 0
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i] > hot[j] })
	idx := int(float64(len(hot)) * topFraction)
	if idx >= len(hot) {
		idx = len(hot) - 1
	}
	t := hot[idx]
	if t == 0 {
		t = 1
	}
	return t
}
