package wire

// Frame is the unit of the fmsa-serve protocol: a tiny self-delimiting
// envelope carrying one request or response over a byte stream. Payloads
// are opaque to the framing layer — Submit frames carry an fmir module
// (this package's Encode output), Result frames a JSON report, Error frames
// a message — so the codec stays a few dozen lines and the fuzzer
// (FuzzServeFrame) can exercise the entire parsing surface.
//
// Encoding, in stream order:
//
//	kind byte | session uvarint | ticket uvarint | payload-len uvarint | payload
//
// The varints reuse fmir's LEB128 conventions. A frame is rejected, never
// truncated, when its payload length exceeds the reader's limit, so a
// malicious or corrupt peer cannot make the server allocate unbounded
// memory before the check.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Frame kinds. Requests flow client→server, responses server→client.
const (
	FrameOpen     = 1 // request: create a session; payload is the options blob
	FrameSubmit   = 2 // request: merge one module; payload is an fmir module
	FrameClose    = 3 // request: tear down the session
	FrameOpened   = 4 // response to Open; Session carries the new id
	FrameAccepted = 5 // response: submit admitted; result follows asynchronously
	FrameResult   = 6 // response: merge finished; payload is the JSON report
	FrameError    = 7 // response: request failed; payload is the message
	FrameBusy     = 8 // response: admission limit hit, retry later (429-style)
)

// frameKindMax bounds the valid kind range for decoder validation.
const frameKindMax = FrameBusy

// DefaultMaxFramePayload caps the payload size ReadFrame accepts unless the
// caller passes its own limit: large enough for any corpus module in the
// benchmark suite, small enough to bound a malicious peer's allocation.
const DefaultMaxFramePayload = 1 << 28 // 256 MiB

// Frame is one protocol envelope. Session identifies the merge session
// (0 in an Open request, assigned by the server in Opened); Ticket
// correlates an asynchronous Result with the Submit that produced it.
type Frame struct {
	Kind    byte
	Session uint64
	Ticket  uint64
	Payload []byte
}

// ErrFrameTooLarge reports a frame whose declared payload exceeds the
// reader's limit. The stream is unrecoverable after it: the oversized
// payload was not consumed.
var ErrFrameTooLarge = errors.New("wire: frame payload exceeds limit")

// AppendFrame appends f's encoding to dst and returns the extended slice.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, f.Kind)
	dst = appendUvarint(dst, f.Session)
	dst = appendUvarint(dst, f.Ticket)
	dst = appendUvarint(dst, uint64(len(f.Payload)))
	return append(dst, f.Payload...)
}

// WriteFrame writes f to w in one Write call, so concurrent writers that
// serialize per call (or guard with a mutex) never interleave frames.
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(make([]byte, 0, 16+len(f.Payload)), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame decodes the next frame from br. maxPayload bounds the payload
// allocation (<= 0 selects DefaultMaxFramePayload). A clean EOF before the
// first byte returns io.EOF unwrapped so connection loops can terminate
// quietly; EOF anywhere inside a frame is io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader, maxPayload int) (Frame, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFramePayload
	}
	var f Frame
	kind, err := br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return f, io.EOF
		}
		return f, err
	}
	if kind < FrameOpen || kind > frameKindMax {
		return f, fmt.Errorf("wire: unknown frame kind %d", kind)
	}
	f.Kind = kind
	if f.Session, err = readFrameUvarint(br); err != nil {
		return f, err
	}
	if f.Ticket, err = readFrameUvarint(br); err != nil {
		return f, err
	}
	n, err := readFrameUvarint(br)
	if err != nil {
		return f, err
	}
	if n > uint64(maxPayload) {
		return f, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, maxPayload)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(br, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return f, err
		}
	}
	return f, nil
}

// readFrameUvarint reads one LEB128 varint, mapping mid-frame EOF to
// io.ErrUnexpectedEOF and rejecting non-minimal or overlong encodings the
// way binary.ReadUvarint does (overflow surfaces as an error, not a wrap).
func readFrameUvarint(br *bufio.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if i == 9 && b > 1 {
			return 0, errors.New("wire: varint overflows uint64")
		}
		if i == 10 {
			return 0, errors.New("wire: varint too long")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
	}
}
