package wire

import (
	"encoding/binary"
	"fmt"

	"fmsa/internal/ir"
)

// Function summary flags (FuncSummary.Flags). SumSelfEq marks hashes whose
// equality implies structural equality (functions with phis or unmodeled
// invokes hash fine but never compare equal, mirroring the encode
// interner's fresh codes); the Uses* bits pin functions whose behavior
// depends on module-local state to their own translation unit.
const (
	SumSelfEq byte = 1 << iota // hash equality implies structural equality
	SumUsesGlobals
	SumUsesInternal // references an internal symbol (possibly itself)
	SumVariadic
)

// maxSummaryLanes bounds the per-function MinHash lane count a decoder will
// allocate for, shielding against corrupt or adversarial length prefixes.
const maxSummaryLanes = 4096

// SumVersion is the .fmsum format version, written in the header slot the
// fmir body Version occupies in module files. It is a separate constant
// because summaries persist global.StableHash values: a change to the
// stable-hash algorithm alters every stored hash without changing the byte
// layout, so the algorithm is part of the format and must bump this —
// decoders reject other versions rather than silently comparing hashes
// produced by a different function. v2: stable hashes come from the
// 8-byte-block FNV-1a + splitmix64-finalizer fnv64 (v1 used byte-at-a-time
// FNV-1a).
const SumVersion = 2

// FuncSummary is the round-1 publication for one function definition:
// everything round 2 needs to pick fold and merge candidates without the
// defining translation unit's body present — the stable structural hash,
// the size and MinHash signature feeding the LSH index and the profit
// bound, and the linkage/flags that gate cross-TU use.
//
// MinHash carries the raw signature lanes. The wire layer is agnostic to
// the lane count — it round-trips whatever length the producer wrote — and
// the consumer (internal/global) validates it against fingerprint.SigLanes,
// keeping this package below fingerprint in the dependency order.
type FuncSummary struct {
	Name    string
	Linkage ir.Linkage
	Flags   byte
	Size    int // instruction count
	Hash    uint64
	MinHash []uint64
}

// TUSummary groups one translation unit's function summaries, in the
// unit's definition order.
type TUSummary struct {
	Name  string
	Funcs []FuncSummary
}

// EncodeSummaries serializes per-TU summaries as an fmir-framed .fmsum
// byte stream: the standard magic/version/name header, one summary
// section, and the end section. Hash and MinHash lanes are fixed-width
// little-endian — they are high-entropy, so varints would only inflate
// them.
func EncodeSummaries(name string, tus []TUSummary) []byte {
	var payload []byte
	payload = appendUvarint(payload, uint64(len(tus)))
	for _, tu := range tus {
		payload = appendString(payload, tu.Name)
		payload = appendUvarint(payload, uint64(len(tu.Funcs)))
		for i := range tu.Funcs {
			fs := &tu.Funcs[i]
			payload = appendString(payload, fs.Name)
			payload = append(payload, byte(fs.Linkage), fs.Flags)
			payload = appendUvarint(payload, uint64(fs.Size))
			payload = binary.LittleEndian.AppendUint64(payload, fs.Hash)
			payload = appendUvarint(payload, uint64(len(fs.MinHash)))
			for _, lane := range fs.MinHash {
				payload = binary.LittleEndian.AppendUint64(payload, lane)
			}
		}
	}
	out := append([]byte(nil), Magic[:]...)
	out = appendUvarint(out, SumVersion)
	out = appendString(out, name)
	out = append(out, secSummary)
	out = appendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	out = append(out, secEnd)
	out = appendUvarint(out, 0)
	return out
}

// DecodeSummaries parses an .fmsum byte stream produced by
// EncodeSummaries, returning the corpus name and the per-TU summaries.
func DecodeSummaries(data []byte) (string, []TUSummary, error) {
	if !IsFMIR(data) {
		return "", nil, ErrBadMagic
	}
	r := &reader{buf: data, pos: len(Magic)}
	if v := r.uvarint(); r.err == nil && v != SumVersion {
		return "", nil, fmt.Errorf("wire: unsupported fmsum version %d (stable hashes incompatible; regenerate with fmsa-gen -summary)", v)
	}
	name := string(r.bytes(int(r.uvarint())))
	var tus []TUSummary
	seen := false
	for r.err == nil {
		id := r.byte()
		plen := r.uvarint()
		if r.err != nil {
			break
		}
		payload := r.bytes(int(plen))
		if id == secEnd {
			if !seen {
				r.fail("summary stream has no summary section")
			}
			break
		}
		if id != secSummary || seen {
			r.fail("unexpected section %d in summary stream", id)
			break
		}
		seen = true
		sub := &reader{buf: payload}
		tus = decodeSummarySection(sub)
		if sub.err != nil {
			return "", nil, sub.err
		}
	}
	if r.err != nil {
		return "", nil, r.err
	}
	return name, tus, nil
}

func decodeSummarySection(r *reader) []TUSummary {
	ntu := r.count(1)
	tus := make([]TUSummary, 0, ntu)
	for t := 0; t < ntu && r.err == nil; t++ {
		tu := TUSummary{Name: string(r.bytes(int(r.uvarint())))}
		nf := r.count(1)
		if nf > 0 {
			tu.Funcs = make([]FuncSummary, 0, nf)
		}
		for i := 0; i < nf && r.err == nil; i++ {
			var fs FuncSummary
			fs.Name = string(r.bytes(int(r.uvarint())))
			fs.Linkage = ir.Linkage(r.byte())
			fs.Flags = r.byte()
			fs.Size = int(r.uvarint())
			fs.Hash = binary.LittleEndian.Uint64(pad8(r.bytes(8)))
			lanes := int(r.uvarint())
			if r.err == nil && lanes > maxSummaryLanes {
				r.fail("summary with %d MinHash lanes exceeds limit %d", lanes, maxSummaryLanes)
				break
			}
			if r.err == nil && lanes > 0 {
				fs.MinHash = make([]uint64, lanes)
			}
			for l := 0; l < lanes && r.err == nil; l++ {
				fs.MinHash[l] = binary.LittleEndian.Uint64(pad8(r.bytes(8)))
			}
			tu.Funcs = append(tu.Funcs, fs)
		}
		tus = append(tus, tu)
	}
	if r.err != nil {
		return nil
	}
	return tus
}

// pad8 shields fixed-width reads from the reader's nil return after a
// truncation error; the sticky error still surfaces at the boundary check.
func pad8(b []byte) []byte {
	if len(b) == 8 {
		return b
	}
	return make([]byte, 8)
}
