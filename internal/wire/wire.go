// Package wire implements fmir, a versioned, sectioned binary encoding of
// IR modules. The layout is designed for fast, parallel ingest: a small
// serially-decoded header carries interned string, type and constant tables,
// and every function body is an independently decodable, length-prefixed
// section that a worker pool can decode concurrently. All integers are
// LEB128 varints (unsigned, with zigzag for signed values), so small indices
// — the overwhelming majority — cost one byte.
//
// File layout:
//
//	magic "FMIR" | version uvarint | module-name (len+bytes)
//	section*     id byte | payload-length uvarint | payload
//	end          id 0 | length 0
//
// Sections appear in the order strings, types, consts, globals, funcs,
// body*, end. Table sections reference only earlier entries, so one serial
// pass builds them; body sections reference only tables and the function
// shells from the funcs section, so they decode in any order and in
// parallel. See DESIGN.md §10 for the full specification.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic is the 4-byte fmir file signature. Sniff it with IsFMIR.
var Magic = [4]byte{'F', 'M', 'I', 'R'}

// Version is the fmir format version this package reads and writes.
// Enum-valued fields (opcodes, type kinds, comparison predicates, linkage)
// are written as their in-memory integer values; any change to those enums
// in package ir is a format change and must bump this.
const Version = 1

// Section identifiers.
const (
	secEnd     = 0 // terminates the section stream
	secStrings = 1 // interned string table
	secTypes   = 2 // interned type table (entries reference earlier entries)
	secConsts  = 3 // interned constant table
	secGlobals = 4 // global variables
	secFuncs   = 5 // function shells: name, signature, linkage, body flag
	secBody    = 6 // one function body; repeated, independently decodable
	secSummary = 7 // per-TU function summaries (global-merge round 1); sole
	// section of .fmsum files, never mixed with module sections
)

// Operand reference tags. An operand is a single uvarint (index<<3 | tag).
const (
	tagLocal  = 0 // index into the body's local defs: params, then insts in layout order
	tagBlock  = 1 // index into the body's blocks
	tagFunc   = 2 // index into the module's functions
	tagGlobal = 3 // index into the module's globals
	tagConst  = 4 // index into the constant table
)

// Constant kind codes in the consts section.
const (
	constInt   = 0
	constFloat = 1
	constUndef = 2
	constNull  = 3
)

// ErrBadMagic reports that input did not start with the fmir signature.
var ErrBadMagic = errors.New("wire: not an fmir file (bad magic)")

// IsFMIR reports whether data begins with the fmir magic bytes. Tools use
// it to sniff binary modules apart from textual IR.
func IsFMIR(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == string(Magic[:])
}

// zigzag maps signed to unsigned so small-magnitude values of either sign
// encode in few varint bytes.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// reader decodes varints and byte strings from one section payload. It is
// a sticky-error cursor: after the first malformed read every subsequent
// read returns zero values, so decode loops check err at their boundaries
// instead of after every field.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

// remaining returns the number of unread payload bytes. Count fields are
// validated against it before slices are allocated, so a corrupt length
// cannot force a huge allocation.
func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) uvarint() uint64 {
	// Fast path: most varints in real modules (opcodes, table indices,
	// operand refs) fit in one byte, and decode spends much of its time here.
	if p := r.pos; r.err == nil && p < len(r.buf) && r.buf[p] < 0x80 {
		r.pos = p + 1
		return uint64(r.buf[p])
	}
	return r.uvarintSlow()
}

func (r *reader) uvarintSlow() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("truncated or overlong varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) svarint() int64 { return unzigzag(r.uvarint()) }

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("truncated payload at offset %d", r.pos)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// bytes returns the next n raw bytes, aliasing the payload buffer.
func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail("byte string of length %d exceeds payload at offset %d", n, r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// count reads a uvarint element count and validates it against the bytes
// still available, given that each element occupies at least min bytes.
func (r *reader) count(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	// n*min cannot overflow: n is first bounded by remaining(), which is at
	// most the buffer length.
	if rem := uint64(r.remaining()); n > rem || n*uint64(min) > rem {
		r.fail("element count %d exceeds payload at offset %d", n, r.pos)
		return 0
	}
	return int(n)
}

// appendUvarint appends the LEB128 encoding of v to b.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// appendString appends a length-prefixed byte string.
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
