package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: FrameOpen, Payload: []byte("opts")},
		{Kind: FrameSubmit, Session: 1, Ticket: 7, Payload: bytes.Repeat([]byte{0xAB}, 300)},
		{Kind: FrameClose, Session: math.MaxUint64},
		{Kind: FrameOpened, Session: 42},
		{Kind: FrameAccepted, Session: 42, Ticket: math.MaxUint64},
		{Kind: FrameResult, Session: 42, Ticket: 9, Payload: []byte(`{"ok":true}`)},
		{Kind: FrameError, Payload: []byte("boom")},
		{Kind: FrameBusy, Session: 3},
	}
	var stream []byte
	for _, f := range frames {
		stream = AppendFrame(stream, f)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for i, want := range frames {
		got, err := ReadFrame(br, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Session != want.Session || got.Ticket != want.Ticket ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(br, 0); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestFrameWriteRead(t *testing.T) {
	var buf bytes.Buffer
	want := Frame{Kind: FrameResult, Session: 5, Ticket: 11, Payload: []byte("payload")}
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bufio.NewReader(&buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.Session != want.Session || got.Ticket != want.Ticket ||
		!bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	enc := AppendFrame(nil, Frame{Kind: FrameSubmit, Payload: make([]byte, 100)})
	_, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)), 99)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// A declared length far beyond the data must be rejected by the limit
	// before any allocation is attempted.
	huge := []byte{FrameSubmit, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	_, err = ReadFrame(bufio.NewReader(bytes.NewReader(huge)), 1<<20)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("huge declared length: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameRejectsBadKind(t *testing.T) {
	for _, kind := range []byte{0, frameKindMax + 1, 0xff} {
		enc := append([]byte{kind}, 0, 0, 0)
		if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)), 0); err == nil {
			t.Fatalf("kind %d accepted", kind)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	enc := AppendFrame(nil, Frame{Kind: FrameSubmit, Session: 300, Ticket: 4, Payload: []byte("abcdefgh")})
	// Every strict prefix must fail cleanly: io.EOF only at offset 0.
	for cut := 0; cut < len(enc); cut++ {
		_, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc[:cut])), 0)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: got %v, want io.EOF", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", cut)
		}
		if err == io.EOF {
			t.Fatalf("prefix of %d bytes: io.EOF leaked for a mid-frame cut", cut)
		}
	}
}

// FuzzServeFrame: the framing decoder must classify arbitrary bytes without
// panicking, never allocate past the payload limit, and be self-consistent —
// any frame it accepts must re-encode and re-decode to the same value.
// Run as a smoke in CI: go test -fuzz=FuzzServeFrame -fuzztime=10s ./internal/wire/.
func FuzzServeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Kind: FrameOpen, Payload: []byte("o")}))
	f.Add(AppendFrame(nil, Frame{Kind: FrameSubmit, Session: 1, Ticket: 2, Payload: []byte("FMIR")}))
	f.Add(AppendFrame(nil, Frame{Kind: FrameBusy, Session: math.MaxUint64, Ticket: math.MaxUint64}))
	f.Add([]byte{FrameSubmit, 0x80, 0x80, 0x80})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 16
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			got, err := ReadFrame(br, limit)
			if err != nil {
				return // rejecting malformed input is fine; panicking is not
			}
			if len(got.Payload) > limit {
				t.Fatalf("payload of %d bytes exceeds the %d limit", len(got.Payload), limit)
			}
			reenc := AppendFrame(nil, got)
			again, err := ReadFrame(bufio.NewReader(bytes.NewReader(reenc)), limit)
			if err != nil {
				t.Fatalf("re-decoding an accepted frame failed: %v", err)
			}
			if again.Kind != got.Kind || again.Session != got.Session ||
				again.Ticket != got.Ticket || !bytes.Equal(again.Payload, got.Payload) {
				t.Fatalf("round trip changed the frame: %+v vs %+v", got, again)
			}
		}
	})
}
