package wire_test

// Wire-format tests live in an external test package so they can use the
// workload generator and compare against the textual round trip.

import (
	"fmt"
	"testing"
	"testing/quick"

	"fmsa/internal/ir"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

func buildModule(t testing.TB, seed int64, nf int) *ir.Module {
	t.Helper()
	p := workload.Profile{
		Name:      "wiret",
		NumFuncs:  nf,
		AvgSize:   30,
		MaxSize:   120,
		Identical: 0.2, ConstVar: 0.1, TypeVar: 0.2, CFGVar: 0.2, Partial: 0.1, Reorder: 0.1,
		InternalFrac: 0.5,
		Seed:         seed,
	}
	return workload.Build(p)
}

// reparse pushes a module through the textual round trip so its in-memory
// state (hotness, use-list order) is exactly what text ingest produces.
func reparse(t testing.TB, m *ir.Module) *ir.Module {
	t.Helper()
	m2, err := ir.ParseModule(m.Name, ir.FormatModule(m))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	return m2
}

// TestEncodeDecodeRoundTripProperty: for arbitrary generated modules,
// text→parse→encode→decode→print is byte-identical to the textual print,
// and the decoded module verifies — at several worker counts.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64, nf uint8) bool {
		m := reparse(t, buildModule(t, seed, int(nf%12)+2))
		want := ir.FormatModule(m)
		data, err := wire.Encode(m)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		for _, workers := range []int{1, 4} {
			got, err := wire.Decode(data, wire.Options{Workers: workers})
			if err != nil {
				t.Logf("decode (workers=%d): %v", workers, err)
				return false
			}
			if err := ir.VerifyModule(got); err != nil {
				t.Logf("verify (workers=%d): %v", workers, err)
				return false
			}
			if ir.FormatModule(got) != want {
				t.Logf("print mismatch (workers=%d)", workers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// useListSignature canonically serializes every use list in the module,
// naming each value by its structural position so signatures compare across
// independently decoded copies. Downstream passes observe use-list order
// through Preds and Callers, so wire ingest must reproduce it exactly.
func useListSignature(m *ir.Module) string {
	instPos := map[*ir.Inst]string{}
	var sig []byte
	for fi, f := range m.Funcs {
		for bi, b := range f.Blocks {
			for ii, in := range b.Insts {
				instPos[in] = fmt.Sprintf("f%d.b%d.i%d", fi, bi, ii)
			}
		}
	}
	appendUses := func(what string, uses []ir.Use) {
		sig = append(sig, what...)
		for _, u := range uses {
			sig = append(sig, fmt.Sprintf(" %s#%d", instPos[u.User], u.Index)...)
		}
		sig = append(sig, '\n')
	}
	for fi, f := range m.Funcs {
		appendUses(fmt.Sprintf("func f%d", fi), f.Uses())
		for pi, p := range f.Params {
			appendUses(fmt.Sprintf("param f%d.p%d", fi, pi), p.Uses())
		}
		for bi, b := range f.Blocks {
			appendUses(fmt.Sprintf("block f%d.b%d", fi, bi), b.Uses())
			for ii, in := range b.Insts {
				appendUses(fmt.Sprintf("inst f%d.b%d.i%d", fi, bi, ii), in.Uses())
			}
		}
	}
	for gi, g := range m.Globals {
		appendUses(fmt.Sprintf("global g%d", gi), g.Uses())
	}
	return string(sig)
}

// TestDecodeUseListOrderMatchesText: decoded modules carry the exact
// use-list order the text parser produces, at every worker count.
func TestDecodeUseListOrderMatchesText(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		m := reparse(t, buildModule(t, seed, 10))
		want := useListSignature(m)
		data, err := wire.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := wire.Decode(data, wire.Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if s := useListSignature(got); s != want {
				t.Fatalf("seed %d workers %d: use-list order diverges from text ingest", seed, workers)
			}
		}
	}
}

// TestMetadataRoundTrip: fields the textual format drops (hotness) or
// renders specially (linkage, global initializers) survive the wire.
func TestMetadataRoundTrip(t *testing.T) {
	m := ir.NewModule("meta")
	g := ir.NewGlobal("tbl", ir.ArrayOf(4, ir.I32()))
	g.Linkage = ir.InternalLinkage
	g.Init = []byte{1, 2, 3, 4}
	m.AddGlobal(g)
	zero := ir.NewGlobal("zero", ir.I64())
	m.AddGlobal(zero)
	sig := ir.FuncOf(ir.Void())
	f := ir.NewFunc("hot", sig)
	f.Linkage = ir.InternalLinkage
	f.Hotness = 123456789
	b := ir.NewBlock("entry")
	f.AppendBlock(b)
	b.Append(ir.NewInst(ir.OpRet, ir.Void()))
	m.AddFunc(f)
	decl := ir.NewFunc("ext", ir.VarFuncOf(ir.I32(), ir.PointerTo(ir.I8())))
	m.AddFunc(decl)

	data, err := wire.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.Decode(data, wire.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gf := got.FuncByName("hot")
	if gf == nil || gf.Hotness != 123456789 || gf.Linkage != ir.InternalLinkage {
		t.Errorf("function metadata lost: %+v", gf)
	}
	if gd := got.FuncByName("ext"); gd == nil || !gd.IsDecl() || !gd.Sig().Variadic {
		t.Errorf("declaration lost: %+v", gd)
	}
	gg := got.GlobalByName("tbl")
	if gg == nil || gg.Linkage != ir.InternalLinkage || string(gg.Init) != "\x01\x02\x03\x04" {
		t.Errorf("global metadata lost: %+v", gg)
	}
	if gz := got.GlobalByName("zero"); gz == nil || gz.Init != nil {
		t.Errorf("zeroinitializer global lost: %+v", gz)
	}
	if ir.FormatModule(got) != ir.FormatModule(m) {
		t.Error("printed forms diverge")
	}
}

// TestDecodeRejectsCorruptInput: truncations and byte flips must produce an
// error or a valid module — never a panic.
func TestDecodeRejectsCorruptInput(t *testing.T) {
	m := reparse(t, buildModule(t, 7, 6))
	data, err := wire.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	decodeSafely := func(desc string, b []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: decode panicked: %v", desc, r)
			}
		}()
		mod, err := wire.Decode(b, wire.Options{Workers: 2})
		if err == nil {
			if verr := ir.VerifyModule(mod); verr != nil {
				// A mutation that still decodes may legitimately produce a
				// module the verifier rejects (e.g. a flipped operand index
				// breaking dominance); what matters is decode not panicking
				// and VerifyModule catching it downstream.
				t.Logf("%s: decoded but unverifiable: %v", desc, verr)
			}
		}
	}
	for n := 0; n <= len(data); n += 1 + len(data)/256 {
		decodeSafely(fmt.Sprintf("truncate to %d", n), data[:n])
	}
	for i := 0; i < len(data); i += 1 + len(data)/512 {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), data...)
			mut[i] ^= flip
			decodeSafely(fmt.Sprintf("flip byte %d by %#x", i, flip), mut)
		}
	}
}

// TestDecodeAnySniffs: DecodeAny routes by magic bytes.
func TestDecodeAnySniffs(t *testing.T) {
	m := reparse(t, buildModule(t, 11, 4))
	want := ir.FormatModule(m)
	data, err := wire.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := wire.DecodeAny("x.fmir", data, 2)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := wire.DecodeAny("wiret", []byte(want), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ir.FormatModule(bin) != want || ir.FormatModule(txt) != want {
		t.Error("sniffing loader returned diverging modules")
	}
	if !wire.IsFMIR(data) || wire.IsFMIR([]byte(want)) {
		t.Error("IsFMIR misclassifies")
	}
}

func BenchmarkDecode(b *testing.B) {
	m := reparse(b, buildModule(b, 3, 64))
	data, err := wire.Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	text := ir.FormatModule(m)
	b.Run("fmir", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode(data, wire.Options{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text", func(b *testing.B) {
		b.SetBytes(int64(len(text)))
		for i := 0; i < b.N; i++ {
			if _, err := ir.ParseModule("b", text); err != nil {
				b.Fatal(err)
			}
		}
	})
}
