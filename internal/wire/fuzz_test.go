package wire_test

// FuzzDecodeVerify lives in the external test package so it can seed from
// the workload generator without import cycles.

import (
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

// FuzzDecodeVerify: the decode boundary must classify arbitrary bytes, never
// crash on them. For any input, Decode either rejects with an error or
// produces a module the staged verifier can walk without panicking; when
// full verification also passes, the module must survive print→reparse as
// valid IR — the decoder may not accept a module that the verifier rejects
// and the rest of the pipeline then trips over. Run as a smoke in CI:
// go test -fuzz=FuzzDecodeVerify -fuzztime=10s ./internal/wire/.
func FuzzDecodeVerify(f *testing.F) {
	// Seeds: encoded generator output (so mutations explore the format from
	// valid starting points), a minimal module, and raw garbage.
	for seed := int64(1); seed <= 3; seed++ {
		p := workload.Profile{
			Name: "fz", NumFuncs: 3, AvgSize: 15, MaxSize: 40,
			Identical: 0.3, TypeVar: 0.2, CFGVar: 0.2,
			InternalFrac: 0.5, Seed: seed,
		}
		data, err := wire.Encode(workload.Build(p))
		if err != nil {
			f.Fatalf("encode seed: %v", err)
		}
		f.Add(data)
	}
	small, err := wire.Encode(ir.MustParseModule("s", "define void @f() {\nentry:\n  ret void\n}\n"))
	if err != nil {
		f.Fatalf("encode seed: %v", err)
	}
	f.Add(small)
	f.Add([]byte("FMIR"))
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wire.Decode(data, wire.Options{Workers: 2})
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		// The verifier must classify whatever the decoder accepted — any
		// panic here is a verifier robustness bug.
		diags := ir.VerifyModuleLevel(m, ir.VerifyFull)
		if len(diags) > 0 {
			// Structurally or semantically invalid IR that slipped past the
			// decoder's shape checks: classified, not crashed on. But the
			// levels must stay ordered — fast findings are a subset of full.
			return
		}
		if fast := ir.VerifyModuleLevel(m, ir.VerifyFast); len(fast) != 0 {
			t.Fatalf("fast level flags a module full level accepts:\n%s", ir.FormatVerifyDiags(fast))
		}
		// Fully verified modules must be printable and reparseable: the
		// decoder+verifier pair may not accept IR the rest of the pipeline
		// rejects.
		text := ir.FormatModule(m)
		m2, err := ir.ParseModule("fuzz", text)
		if err != nil {
			t.Fatalf("verified module does not reparse: %v\n%s", err, text)
		}
		if err := ir.VerifyModule(m2); err != nil {
			t.Fatalf("reparsed module fails verify: %v\n%s", err, text)
		}
	})
}
