package wire

import (
	"reflect"
	"testing"

	"fmsa/internal/ir"
)

func sampleSummaries() []TUSummary {
	sig := make([]uint64, 128)
	for i := range sig {
		sig[i] = uint64(i)*0x9e3779b97f4a7c15 + 7
	}
	return []TUSummary{
		{Name: "a.unit0", Funcs: []FuncSummary{
			{Name: "f000", Linkage: ir.ExternalLinkage, Flags: SumSelfEq,
				Size: 42, Hash: 0xdeadbeefcafef00d, MinHash: sig},
			{Name: "helper", Linkage: ir.InternalLinkage,
				Flags: SumUsesInternal | SumVariadic, Size: 3, Hash: 1},
		}},
		{Name: "a.unit1"}, // empty TU round-trips too
		{Name: "a.unit2", Funcs: []FuncSummary{
			{Name: "g", Linkage: ir.ExternalLinkage, Flags: SumUsesGlobals,
				Size: 7, Hash: ^uint64(0), MinHash: sig},
		}},
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	want := sampleSummaries()
	data := EncodeSummaries("corpus", want)
	if !IsFMIR(data) {
		t.Fatal("summary stream must carry the fmir magic")
	}
	name, got, err := DecodeSummaries(data)
	if err != nil {
		t.Fatal(err)
	}
	if name != "corpus" {
		t.Errorf("name = %q, want %q", name, "corpus")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("summaries do not round-trip:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSummaryDecodeRejectsCorrupt(t *testing.T) {
	good := EncodeSummaries("c", sampleSummaries())
	cases := map[string][]byte{
		"bad magic":    append([]byte("NOPE"), good[4:]...),
		"empty":        nil,
		"truncated":    good[:len(good)/2],
		"no sections":  good[:6],
		"module bytes": nil, // filled below: a module stream is not a summary
	}
	m := ir.MustParseModule("m", "define void @f() {\nentry:\n  ret void\n}")
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	cases["module bytes"] = enc
	cases["oversized lane count"] = EncodeSummaries("c", []TUSummary{
		{Name: "u", Funcs: []FuncSummary{
			{Name: "f", MinHash: make([]uint64, maxSummaryLanes+1)},
		}},
	})
	// A v1 .fmsum decodes byte-for-byte but carries stable hashes from the
	// old fnv64; it must be rejected, not silently mis-compared.
	stale := EncodeSummaries("c", sampleSummaries())
	stale[4] = 1 // version varint sits right after the 4-byte magic
	cases["stale fmsum version"] = stale
	for name, data := range cases {
		if _, _, err := DecodeSummaries(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}
