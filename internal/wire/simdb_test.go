package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleDBRecords() []DBRecord {
	return []DBRecord{
		{
			Hash: 0xdeadbeefcafe, Name: "alpha", Linkage: 1, Flags: DBSelfEq,
			Size: 12, Key: []byte("key-alpha"),
			Ops:     []DBOpCount{{Op: 0, Count: 3}, {Op: 7, Count: 9}},
			Types:   []DBTypeCount{{Key: "i32", Count: 5}, {Key: "i64*", Count: 7}},
			MinHash: []uint64{1, 1 << 40, 0xffffffffffffffff},
			Bands:   []uint64{0xabc, 42},
		},
		{
			Hash: 2, Name: "beta", Linkage: 0, Flags: 0,
			Size: 1, Key: []byte{0, 1, 2, 0xff},
			// unsigned record: no lanes
		},
	}
}

// copyDBRecord deep-copies the scratch-reused slices of a walked record so a
// test collector may retain it past the callback (see the WalkDB contract).
func copyDBRecord(r DBRecord) DBRecord {
	if len(r.Ops) > 0 {
		r.Ops = append([]DBOpCount(nil), r.Ops...)
	}
	if len(r.Types) > 0 {
		r.Types = append([]DBTypeCount(nil), r.Types...)
	}
	if len(r.MinHash) > 0 {
		r.MinHash = append([]uint64(nil), r.MinHash...)
	}
	if len(r.Bands) > 0 {
		r.Bands = append([]uint64(nil), r.Bands...)
	}
	return r
}

func TestDBSegmentRoundTrip(t *testing.T) {
	recs := sampleDBRecords()
	tombs := []DBTombstone{{Hash: 2, Key: []byte{0, 1, 2, 0xff}}, {Hash: 99, Key: nil}}

	seg := AppendDBHeader(nil, "corpus")
	seg = AppendDBRecords(seg, recs[:1])
	seg = AppendDBTombstones(seg, tombs)
	seg = AppendDBRecords(seg, recs[1:]) // appended later, like an O_APPEND flush

	if !IsFMDB(seg) {
		t.Fatal("encoded segment does not sniff as fmdb")
	}
	var gotRecs []DBRecord
	var gotTombs []DBTombstone
	var order []byte
	name, err := WalkDB(seg,
		func(r DBRecord) { gotRecs = append(gotRecs, copyDBRecord(r)); order = append(order, 'r') },
		func(tb DBTombstone) { gotTombs = append(gotTombs, tb); order = append(order, 't') })
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	if name != "corpus" {
		t.Fatalf("name = %q, want corpus", name)
	}
	if string(order) != "rttr" {
		t.Fatalf("replay order %q, want rttr (log order)", order)
	}
	if !reflect.DeepEqual(gotRecs, recs) {
		t.Fatalf("records round trip mismatch:\ngot  %+v\nwant %+v", gotRecs, recs)
	}
	if !reflect.DeepEqual(gotTombs, tombs) {
		t.Fatalf("tombstones round trip mismatch:\ngot  %+v\nwant %+v", gotTombs, tombs)
	}
}

func TestDBSegmentKeyAliases(t *testing.T) {
	seg := AppendDBHeader(nil, "z")
	seg = AppendDBRecords(seg, []DBRecord{{Hash: 1, Name: "f", Key: []byte("abc")}})
	var key []byte
	if _, err := WalkDB(seg, func(r DBRecord) { key = r.Key }, nil); err != nil {
		t.Fatal(err)
	}
	if len(key) != 3 {
		t.Fatalf("key lost: %q", key)
	}
	// Zero-copy: the decoded key must point into the segment buffer.
	if &key[0] != &seg[bytes.Index(seg, []byte("abc"))] {
		t.Fatal("decoded key does not alias the segment buffer")
	}
}

func TestDBSegmentRejectsCorruption(t *testing.T) {
	// A cut at a section boundary is a valid, shorter log (that is what
	// O_APPEND growth looks like mid-write-crash recovery rejects); every
	// other prefix must fail — never panic, never silently succeed.
	seg := AppendDBHeader(nil, "corpus")
	boundary := map[int]bool{len(seg): true}
	seg = AppendDBRecords(seg, sampleDBRecords())
	boundary[len(seg)] = true
	seg = AppendDBTombstones(seg, []DBTombstone{{Hash: 7, Key: []byte("k")}})
	hdrLen := len(AppendDBHeader(nil, "corpus"))
	for cut := 0; cut < len(seg); cut++ {
		_, err := WalkDB(seg[:cut], nil, nil)
		if boundary[cut] {
			if err != nil {
				t.Fatalf("section-boundary prefix at %d rejected: %v", cut, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(seg))
		}
	}

	if _, err := WalkDB([]byte("FMIR"), nil, nil); err != ErrBadDBMagic {
		t.Fatalf("fmir magic: got %v, want ErrBadDBMagic", err)
	}
	bad := append([]byte(nil), seg...)
	bad[4] = 0x7f // version
	if _, err := WalkDB(bad, nil, nil); err == nil {
		t.Fatal("bad version accepted")
	}
	bad = append([]byte(nil), seg...)
	bad[hdrLen] = 0x33 // unknown section id
	if _, err := WalkDB(bad, nil, nil); err == nil {
		t.Fatal("unknown section id accepted")
	}
}

// TestDBSegmentPrefixWalk sweeps every truncation point: cuts inside the
// header are unrecoverable, every other cut replays exactly the complete
// sections before it and reports the boundary so a crashed store can
// truncate its tail — while corruption inside a complete section stays a
// hard error even for the prefix walker.
func TestDBSegmentPrefixWalk(t *testing.T) {
	seg := AppendDBHeader(nil, "corpus")
	hdr := len(seg)
	seg = AppendDBRecords(seg, sampleDBRecords())
	b1 := len(seg)
	seg = AppendDBTombstones(seg, []DBTombstone{{Hash: 7, Key: []byte("k")}})
	for cut := 0; cut <= len(seg); cut++ {
		var nrec, ntomb int
		name, n, err := WalkDBPrefix(seg[:cut],
			func(DBRecord) { nrec++ }, func(DBTombstone) { ntomb++ })
		if cut < hdr {
			if err == nil {
				t.Fatalf("cut %d inside the header accepted", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if name != "corpus" {
			t.Fatalf("cut %d: name %q", cut, name)
		}
		want, wantRec, wantTomb := hdr, 0, 0
		if cut >= b1 {
			want, wantRec = b1, len(sampleDBRecords())
		}
		if cut == len(seg) {
			want, wantTomb = len(seg), 1
		}
		if n != want {
			t.Fatalf("cut %d: prefix %d, want %d", cut, n, want)
		}
		if nrec != wantRec || ntomb != wantTomb {
			t.Fatalf("cut %d: replayed %d records %d tombstones, want %d/%d",
				cut, nrec, ntomb, wantRec, wantTomb)
		}
	}
	bad := append([]byte(nil), seg...)
	bad[hdr] = 0x33 // unknown id on a fully-present section
	if _, _, err := WalkDBPrefix(bad, nil, nil); err == nil {
		t.Fatal("prefix walk accepted an unknown section id")
	}
}

func TestDBSegmentBoundsHostileCounts(t *testing.T) {
	// A records section claiming a huge element count must be rejected by
	// the min-size bound before any allocation.
	seg := AppendDBHeader(nil, "x")
	payload := appendUvarint(nil, 1<<40)
	seg = append(seg, dbSecRecords)
	seg = appendUvarint(seg, uint64(len(payload)))
	seg = append(seg, payload...)
	if _, err := WalkDB(seg, nil, nil); err == nil {
		t.Fatal("hostile record count accepted")
	}

	// A record claiming more MinHash lanes than the cap must be rejected.
	rec := DBRecord{Hash: 1, Name: "f", MinHash: make([]uint64, 3)}
	seg = AppendDBHeader(nil, "x")
	body := AppendDBRecords(nil, []DBRecord{rec})
	// Patch the lane count varint (the record ends with count + 3 lanes +
	// the zero bands count).
	body[len(body)-1-3*8-1] = 0xff // becomes a multi-byte varint prefix -> corrupt
	seg = append(seg, body...)
	if _, err := WalkDB(seg, nil, nil); err == nil {
		t.Fatal("corrupted lane count accepted")
	}
}

// FuzzSimDBSegment: the segment walker must error on corrupt or truncated
// input, never panic and never over-read. Seeds cover valid multi-section
// segments and their mutations; the fuzzer explores from there.
func FuzzSimDBSegment(f *testing.F) {
	valid := AppendDBHeader(nil, "corpus")
	valid = AppendDBRecords(valid, sampleDBRecords())
	valid = AppendDBTombstones(valid, []DBTombstone{{Hash: 7, Key: []byte("kk")}})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(AppendDBHeader(nil, ""))
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)
	f.Add([]byte("FMDB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []DBRecord
		var tombs []DBTombstone
		name, err := WalkDB(data,
			func(r DBRecord) { recs = append(recs, copyDBRecord(r)) },
			func(tb DBTombstone) { tombs = append(tombs, tb) })
		if err != nil {
			return
		}
		// Accepted input must re-encode and replay to the same items: the
		// format has a canonical byte form per item, so a walk→encode→walk
		// cycle is lossless.
		seg := AppendDBHeader(nil, name)
		if len(recs) > 0 {
			seg = AppendDBRecords(seg, recs)
		}
		if len(tombs) > 0 {
			seg = AppendDBTombstones(seg, tombs)
		}
		var recs2 []DBRecord
		var tombs2 []DBTombstone
		name2, err := WalkDB(seg,
			func(r DBRecord) { recs2 = append(recs2, copyDBRecord(r)) },
			func(tb DBTombstone) { tombs2 = append(tombs2, tb) })
		if err != nil {
			t.Fatalf("re-encoded segment rejected: %v", err)
		}
		if name2 != name || !reflect.DeepEqual(recs, recs2) || !reflect.DeepEqual(tombs, tombs2) {
			t.Fatal("walk→encode→walk not lossless")
		}
	})
}
