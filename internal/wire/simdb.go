package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The fmdb segment format: the on-disk carrier of the persistent similarity
// database (internal/simdb, DESIGN.md §14). A segment file is an append-only
// log in the fmir sectioned-LEB128 style under its own magic:
//
//	magic "FMDB" | version uvarint | store-name (len+bytes)
//	section*     id byte | payload-length uvarint | payload
//
// Unlike fmir there is no end section: the stream is terminated by EOF, so a
// writer extends a segment by appending whole sections (O_APPEND), and a
// reader replays sections in order. Two section kinds exist: records (upserts
// keyed by stable hash + content key — a later record for the same key
// supersedes an earlier one) and tombstones (removals of the same key; a
// still-later record resurrects it). Replay order is the log order, which is
// what makes the live set a pure function of the file bytes.
//
// A record carries everything the explore rank cache needs to skip
// re-fingerprinting an unchanged function: the stable hash and the canonical
// content key (the staleness check is key byte equality), the sparse opcode
// and type frequency tables of the fingerprint, the MinHash signature lanes
// (absent on records produced by exact-ranking runs that never signed), and
// optionally the LSH band keys derived from those lanes.
// Hash and lane values are fixed-width little-endian — high-entropy values
// varints would only inflate — everything else is LEB128. Key bytes alias
// the input buffer on decode (zero-copy), like fmir body strings.
type DBRecord struct {
	Hash    uint64
	Name    string
	Linkage byte
	Flags   byte
	Size    int // instruction count (the fingerprint's Total)
	Key     []byte
	// Ops and Types are the sparse fingerprint tables: opcode counts with
	// ascending opcodes, and type-key counts sorted by key (the order
	// fingerprint.Compute produces).
	Ops   []DBOpCount
	Types []DBTypeCount
	// MinHash carries the raw signature lanes; empty means the record was
	// never signed. The wire layer round-trips whatever lane count the
	// producer wrote; the consumer validates it against fingerprint.SigLanes.
	MinHash []uint64
	// Bands carries the record's precomputed LSH band keys (one per band of
	// the producer's banding), letting a reader rehydrate the index without
	// re-hashing any band. Empty means not persisted; the consumer validates
	// the count against its own banding and falls back to recomputing from
	// MinHash on mismatch, so the field is a pure accelerator.
	Bands []uint64
}

// DBOpCount is one sparse opcode-frequency entry.
type DBOpCount struct {
	Op    int32
	Count int32
}

// DBTypeCount is one type-frequency entry, keyed by the type's spelling.
type DBTypeCount struct {
	Key   string
	Count int32
}

// DBTombstone removes the record with this exact (hash, key) pair from the
// live set. The key bytes disambiguate FNV collisions.
type DBTombstone struct {
	Hash uint64
	Key  []byte
}

// DBSelfEq marks records whose key equality implies structural equality
// (mirrors SumSelfEq; functions with φs or unmodeled invokes clear it).
const DBSelfEq byte = 1 << 0

// DBMagic is the 4-byte fmdb segment signature.
var DBMagic = [4]byte{'F', 'M', 'D', 'B'}

// DBVersion is the fmdb format version this package reads and writes.
// Segments persist global.StableHash values and default-banding LSH band
// keys, so the stable-hash algorithm and lsh.DefaultParams are part of the
// format: a change to either must bump this so stale segments are rejected
// instead of silently mis-comparing. v1 hashes with the 8-byte-block FNV-1a
// + splitmix64-finalizer fnv64.
const DBVersion = 1

// fmdb section identifiers (disjoint stream from fmir sections).
const (
	dbSecRecords = 1
	dbSecTombs   = 2
)

// maxDBOps bounds a record's sparse opcode table: there are only NumOpcodes
// distinct opcodes, but the wire layer sits below ir's enum, so it uses a
// generous fixed bound and the consumer re-validates exact opcode ranges.
const maxDBOps = 4096

// IsFMDB reports whether data begins with the fmdb magic bytes.
func IsFMDB(data []byte) bool {
	return len(data) >= len(DBMagic) && string(data[:len(DBMagic)]) == string(DBMagic[:])
}

// AppendDBHeader appends the segment header: magic, version, store name.
func AppendDBHeader(b []byte, name string) []byte {
	b = append(b, DBMagic[:]...)
	b = appendUvarint(b, DBVersion)
	return appendString(b, name)
}

// AppendDBRecords appends one records section holding recs in order.
func AppendDBRecords(b []byte, recs []DBRecord) []byte {
	var payload []byte
	payload = appendUvarint(payload, uint64(len(recs)))
	for i := range recs {
		payload = appendDBRecord(payload, &recs[i])
	}
	b = append(b, dbSecRecords)
	b = appendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendDBRecord(b []byte, r *DBRecord) []byte {
	b = binaryLEAppend64(b, r.Hash)
	b = appendString(b, r.Name)
	b = append(b, r.Linkage, r.Flags)
	b = appendUvarint(b, uint64(r.Size))
	b = appendUvarint(b, uint64(len(r.Key)))
	b = append(b, r.Key...)
	b = appendUvarint(b, uint64(len(r.Ops)))
	for _, oc := range r.Ops {
		b = appendUvarint(b, uint64(oc.Op))
		b = appendUvarint(b, uint64(oc.Count))
	}
	b = appendUvarint(b, uint64(len(r.Types)))
	for _, tc := range r.Types {
		b = appendString(b, tc.Key)
		b = appendUvarint(b, uint64(tc.Count))
	}
	b = appendUvarint(b, uint64(len(r.MinHash)))
	for _, lane := range r.MinHash {
		b = binaryLEAppend64(b, lane)
	}
	b = appendUvarint(b, uint64(len(r.Bands)))
	for _, k := range r.Bands {
		b = binaryLEAppend64(b, k)
	}
	return b
}

// AppendDBTombstones appends one tombstone section holding tombs in order.
func AppendDBTombstones(b []byte, tombs []DBTombstone) []byte {
	var payload []byte
	payload = appendUvarint(payload, uint64(len(tombs)))
	for _, t := range tombs {
		payload = binaryLEAppend64(payload, t.Hash)
		payload = appendUvarint(payload, uint64(len(t.Key)))
		payload = append(payload, t.Key...)
	}
	b = append(b, dbSecTombs)
	b = appendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

// WalkDB replays a segment byte stream in log order, invoking onRecord for
// every record and onTomb for every tombstone (either callback may be nil).
// Record Key bytes and tombstone Key bytes alias data; a record's Ops, Types,
// MinHash and Bands slices are scratch reused between callbacks — a callback that
// keeps a record beyond its invocation must copy them (Types' Key strings
// are immutable and safe to retain as-is). Corrupt or truncated input
// returns an error; callbacks already invoked before the error stand (the
// caller discards its accumulated state on error). Returns the store name
// from the header.
//
// WalkDB is the strict walker: every byte of data must belong to a complete,
// well-formed section. A reader that wants crash recovery — replay the
// complete prefix of a segment whose tail was cut mid-append — uses
// WalkDBPrefix instead.
func WalkDB(data []byte, onRecord func(DBRecord), onTomb func(DBTombstone)) (string, error) {
	name, n, err := WalkDBPrefix(data, onRecord, onTomb)
	if err != nil {
		return "", err
	}
	if n != len(data) {
		return "", fmt.Errorf("wire: fmdb segment truncated mid-section at offset %d", n)
	}
	return name, nil
}

// WalkDBPrefix replays the longest complete-section prefix of a segment byte
// stream, with the same callback and aliasing contract as WalkDB, and
// returns the store name plus the prefix length in bytes. A truncated
// trailing section — what a crash mid-way through an O_APPEND flush leaves
// behind — is not an error: replay stops at the last complete section and
// the returned length tells the caller where the valid log ends (n <
// len(data) signals a damaged tail to truncate before appending again).
// Errors are reserved for damage that recovery cannot scope: bad magic, a
// version mismatch, a truncated header, an unknown section id, or corruption
// inside a fully-present section payload. No callback is invoked for the
// truncated tail: sections replay only once their payload is complete.
func WalkDBPrefix(data []byte, onRecord func(DBRecord), onTomb func(DBTombstone)) (string, int, error) {
	if !IsFMDB(data) {
		return "", 0, ErrBadDBMagic
	}
	r := &reader{buf: data, pos: len(DBMagic)}
	if v := r.uvarint(); r.err == nil && v != DBVersion {
		return "", 0, fmt.Errorf("wire: unsupported fmdb version %d", v)
	}
	name := string(r.bytes(int(r.uvarint())))
	if r.err != nil {
		return "", 0, r.err // a segment without a complete header holds nothing
	}
	good := r.pos
	for r.remaining() > 0 {
		id := r.byte()
		plen := r.uvarint()
		if r.err != nil {
			break // truncated tail: keep the prefix
		}
		payload := r.bytes(int(plen))
		if r.err != nil {
			break
		}
		sub := &reader{buf: payload}
		switch id {
		case dbSecRecords:
			walkDBRecords(sub, onRecord)
		case dbSecTombs:
			walkDBTombs(sub, onTomb)
		default:
			return "", good, fmt.Errorf("wire: unexpected section %d in fmdb stream", id)
		}
		if sub.err != nil {
			return "", good, sub.err
		}
		good = r.pos
	}
	return name, good, nil
}

func walkDBRecords(r *reader, onRecord func(DBRecord)) {
	n := r.count(12) // hash(8) + four 1-byte fields is the floor of a record
	// Scratch state shared across the section's records: the Ops, Types and
	// MinHash slices handed to the callback are reused between invocations
	// (see the WalkDB retention contract), and type-key spellings — a small
	// set repeated across thousands of records — are interned so replaying a
	// large segment allocates per distinct spelling, not per entry.
	var (
		opsBuf   []DBOpCount
		typesBuf []DBTypeCount
		laneBuf  []uint64
		bandBuf  []uint64
		interned map[string]string
	)
	for i := 0; i < n && r.err == nil; i++ {
		var rec DBRecord
		rec.Hash = binaryLE64(r)
		rec.Name = string(r.bytes(int(r.uvarint())))
		rec.Linkage = r.byte()
		rec.Flags = r.byte()
		rec.Size = int(r.uvarint())
		rec.Key = dbKeyBytes(r)
		nOps := r.count(2)
		if r.err == nil && nOps > maxDBOps {
			r.fail("fmdb record with %d opcode entries exceeds limit %d", nOps, maxDBOps)
			return
		}
		opsBuf = opsBuf[:0]
		for k := 0; k < nOps && r.err == nil; k++ {
			op := r.uvarint()
			count := r.uvarint()
			if op > maxDBOps || count > 1<<31-1 {
				r.fail("fmdb opcode entry out of range at offset %d", r.pos)
				return
			}
			opsBuf = append(opsBuf, DBOpCount{Op: int32(op), Count: int32(count)})
		}
		if len(opsBuf) > 0 {
			rec.Ops = opsBuf
		}
		nTypes := r.count(2)
		typesBuf = typesBuf[:0]
		for k := 0; k < nTypes && r.err == nil; k++ {
			kb := r.bytes(int(r.uvarint()))
			count := r.uvarint()
			if count > 1<<31-1 {
				r.fail("fmdb type count out of range at offset %d", r.pos)
				return
			}
			if interned == nil {
				interned = make(map[string]string, 32)
			}
			key, ok := interned[string(kb)]
			if !ok {
				key = string(kb)
				interned[key] = key
			}
			typesBuf = append(typesBuf, DBTypeCount{Key: key, Count: int32(count)})
		}
		if len(typesBuf) > 0 {
			rec.Types = typesBuf
		}
		lanes := int(r.uvarint())
		if r.err == nil && lanes > maxSummaryLanes {
			r.fail("fmdb record with %d MinHash lanes exceeds limit %d", lanes, maxSummaryLanes)
			return
		}
		if r.err == nil && lanes > 0 {
			if lanes*8 > r.remaining() {
				r.fail("fmdb lane data exceeds payload at offset %d", r.pos)
				return
			}
			if cap(laneBuf) < lanes {
				laneBuf = make([]uint64, lanes)
			}
			mh := laneBuf[:lanes]
			for l := range mh {
				mh[l] = binaryLE64(r)
			}
			rec.MinHash = mh
		}
		bands := int(r.uvarint())
		if r.err == nil && bands > maxSummaryLanes {
			r.fail("fmdb record with %d band keys exceeds limit %d", bands, maxSummaryLanes)
			return
		}
		if r.err == nil && bands > 0 {
			if bands*8 > r.remaining() {
				r.fail("fmdb band data exceeds payload at offset %d", r.pos)
				return
			}
			if cap(bandBuf) < bands {
				bandBuf = make([]uint64, bands)
			}
			bk := bandBuf[:bands]
			for l := range bk {
				bk[l] = binaryLE64(r)
			}
			rec.Bands = bk
		}
		if r.err == nil && onRecord != nil {
			onRecord(rec)
		}
	}
}

func walkDBTombs(r *reader, onTomb func(DBTombstone)) {
	n := r.count(9) // hash(8) + key length byte
	for i := 0; i < n && r.err == nil; i++ {
		var t DBTombstone
		t.Hash = binaryLE64(r)
		t.Key = dbKeyBytes(r)
		if r.err == nil && onTomb != nil {
			onTomb(t)
		}
	}
}

// ErrBadDBMagic reports that input did not start with the fmdb signature.
var ErrBadDBMagic = errors.New("wire: not an fmdb segment (bad magic)")

// dbKeyBytes reads a length-prefixed key, normalizing zero length to nil so
// round trips are exact (the encoder writes nil and empty identically).
func dbKeyBytes(r *reader) []byte {
	n := int(r.uvarint())
	if n == 0 {
		return nil
	}
	return r.bytes(n)
}

// binaryLE64 reads one fixed-width little-endian uint64.
func binaryLE64(r *reader) uint64 {
	return binary.LittleEndian.Uint64(pad8(r.bytes(8)))
}

// binaryLEAppend64 appends one fixed-width little-endian uint64.
func binaryLEAppend64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
