package wire

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"fmsa/internal/ir"
)

// DecodeAny parses data as fmir when it begins with the magic bytes and as
// textual IR otherwise. name becomes the module name for textual IR
// (mirroring ir.ParseModule); fmir modules carry their own name. workers
// bounds parallel body decode for the binary path and is ignored for text.
func DecodeAny(name string, data []byte, workers int) (*ir.Module, error) {
	if IsFMIR(data) {
		return Decode(data, Options{Workers: workers})
	}
	return ir.ParseModule(name, string(data))
}

// LoadFile reads one module file in either format, sniffing the magic.
func LoadFile(path string, workers int) (*ir.Module, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeAny(path, data, workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// LoadFiles loads module files concurrently on up to workers goroutines
// and returns the modules in argument order, so multi-file corpora ingest
// deterministically regardless of scheduling. With several files the
// parallelism budget goes to the file level (each file decodes its bodies
// serially); a single file gets the full budget for body decode instead.
func LoadFiles(paths []string, workers int) ([]*ir.Module, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(paths) == 1 {
		m, err := LoadFile(paths[0], workers)
		if err != nil {
			return nil, err
		}
		return []*ir.Module{m}, nil
	}
	fileWorkers := workers
	if fileWorkers > len(paths) {
		fileWorkers = len(paths)
	}
	mods := make([]*ir.Module, len(paths))
	errs := make([]error, len(paths))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < fileWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(paths) {
					return
				}
				mods[i], errs[i] = LoadFile(paths[i], 1)
			}
		}()
	}
	wg.Wait()
	// Report the first failure in argument order for deterministic output.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mods, nil
}
