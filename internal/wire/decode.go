package wire

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"fmsa/internal/ir"
)

// Options configure ReadModule.
type Options struct {
	// Workers bounds the goroutines decoding function bodies concurrently.
	// Zero or negative means GOMAXPROCS. The resulting module — including
	// use-list order, which downstream passes observe through Preds and
	// Callers — is identical for every worker count.
	Workers int
}

// decoder holds the serially-built module state shared (read-only) by the
// body workers: the interned tables and the function/global shells.
type decoder struct {
	m       *ir.Module
	strs    []string // index 0 is ""
	types   []*ir.Type
	consts  []ir.Constant
	hasBody []bool // per function: shell expects a body section
	gotBody []bool // per function: body section seen (dispatcher-only)
}

func (d *decoder) str(r *reader, what string) string {
	idx := r.uvarint()
	if idx == 0 {
		return ""
	}
	if idx >= uint64(len(d.strs)) {
		r.fail("%s string index %d out of range", what, idx)
		return ""
	}
	return d.strs[idx]
}

func (d *decoder) typeAt(r *reader) *ir.Type {
	idx := r.uvarint()
	if idx >= uint64(len(d.types)) {
		r.fail("type index %d out of range", idx)
		return nil
	}
	return d.types[idx]
}

func (d *decoder) decodeStrings(r *reader) {
	if d.strs != nil {
		r.fail("duplicate strings section")
		return
	}
	n := r.count(1)
	if r.err != nil {
		return
	}
	d.strs = make([]string, n+1)
	for i := 1; i <= n; i++ {
		l := r.uvarint()
		d.strs[i] = string(r.bytes(int(l)))
	}
}

func (d *decoder) decodeTypes(r *reader) {
	if d.types != nil {
		r.fail("duplicate types section")
		return
	}
	n := r.count(1)
	if r.err != nil {
		return
	}
	d.types = make([]*ir.Type, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		kind := ir.TypeKind(r.byte())
		var t *ir.Type
		switch kind {
		case ir.VoidKind:
			t = ir.Void()
		case ir.LabelKind:
			t = ir.Label()
		case ir.TokenKind:
			t = ir.Token()
		case ir.IntKind:
			bits := r.uvarint()
			if r.err != nil {
				return
			}
			if bits < 1 || bits > 64 {
				r.fail("integer type with %d bits", bits)
				return
			}
			t = ir.Int(int(bits))
		case ir.FloatKind:
			bits := r.uvarint()
			if r.err != nil {
				return
			}
			if bits != 32 && bits != 64 {
				r.fail("float type with %d bits", bits)
				return
			}
			t = ir.Float(int(bits))
		case ir.PointerKind:
			elem := d.typeAt(r)
			if r.err != nil {
				return
			}
			t = ir.PointerTo(elem)
		case ir.ArrayKind:
			ln := r.uvarint()
			elem := d.typeAt(r)
			if r.err != nil {
				return
			}
			if ln > math.MaxInt32 {
				r.fail("array type with %d elements", ln)
				return
			}
			t = ir.ArrayOf(int(ln), elem)
		case ir.StructKind:
			nf := r.count(1)
			if r.err != nil {
				return
			}
			fields := make([]*ir.Type, nf)
			for j := range fields {
				fields[j] = d.typeAt(r)
			}
			if r.err != nil {
				return
			}
			t = ir.StructOf(fields...)
		case ir.FuncKind:
			variadic := r.byte()
			ret := d.typeAt(r)
			np := r.count(1)
			if r.err != nil {
				return
			}
			params := make([]*ir.Type, np)
			for j := range params {
				params[j] = d.typeAt(r)
			}
			if r.err != nil {
				return
			}
			if variadic != 0 {
				t = ir.VarFuncOf(ret, params...)
			} else {
				t = ir.FuncOf(ret, params...)
			}
		default:
			r.fail("unknown type kind %d", kind)
			return
		}
		d.types = append(d.types, t)
	}
}

func (d *decoder) decodeConsts(r *reader) {
	if d.consts != nil {
		r.fail("duplicate consts section")
		return
	}
	n := r.count(2)
	if r.err != nil {
		return
	}
	d.consts = make([]ir.Constant, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		kind := r.byte()
		t := d.typeAt(r)
		if r.err != nil {
			return
		}
		var c ir.Constant
		switch kind {
		case constInt:
			v := r.svarint()
			if !t.IsInt() {
				r.fail("integer constant with non-integer type %s", t)
				return
			}
			c = ir.NewConstInt(t, v)
		case constFloat:
			bits := r.uvarint()
			if !t.IsFloat() {
				r.fail("float constant with non-float type %s", t)
				return
			}
			c = ir.NewConstFloat(t, math.Float64frombits(bits))
		case constUndef:
			c = ir.NewUndef(t)
		case constNull:
			if !t.IsPointer() {
				r.fail("null constant with non-pointer type %s", t)
				return
			}
			c = ir.NewConstNull(t)
		default:
			r.fail("unknown constant kind %d", kind)
			return
		}
		d.consts = append(d.consts, c)
	}
}

func (d *decoder) decodeGlobals(r *reader) {
	if len(d.m.Globals) > 0 {
		r.fail("duplicate globals section")
		return
	}
	n := r.count(4)
	for i := 0; i < n && r.err == nil; i++ {
		name := d.str(r, "global name")
		t := d.typeAt(r)
		linkage := r.uvarint()
		flag := r.byte()
		var init []byte
		if flag == 1 {
			l := r.uvarint()
			init = append([]byte{}, r.bytes(int(l))...)
		} else if flag != 0 {
			r.fail("unknown global init flag %d", flag)
		}
		if r.err != nil {
			return
		}
		if !ir.ValidSymbolName(name) {
			r.fail("invalid global name %q", name)
			return
		}
		if d.m.GlobalByName(name) != nil {
			r.fail("duplicate global @%s", name)
			return
		}
		g := ir.NewGlobal(name, t)
		g.Linkage = ir.Linkage(linkage)
		g.Init = init
		d.m.AddGlobal(g)
	}
}

func (d *decoder) decodeFuncs(r *reader) {
	if d.hasBody != nil {
		r.fail("duplicate funcs section")
		return
	}
	n := r.count(5)
	if r.err != nil {
		return
	}
	d.hasBody = make([]bool, n)
	d.gotBody = make([]bool, n)
	for i := 0; i < n && r.err == nil; i++ {
		name := d.str(r, "function name")
		sig := d.typeAt(r)
		linkage := r.uvarint()
		hotness := r.uvarint()
		flag := r.byte()
		if r.err != nil {
			return
		}
		if sig.Kind != ir.FuncKind {
			r.fail("function @%s with non-function type %s", name, sig)
			return
		}
		if !ir.ValidSymbolName(name) {
			r.fail("invalid function name %q", name)
			return
		}
		if d.m.FuncByName(name) != nil {
			r.fail("duplicate function @%s", name)
			return
		}
		f := ir.NewFunc(name, sig)
		f.Linkage = ir.Linkage(linkage)
		f.Hotness = hotness
		d.m.AddFunc(f)
		d.hasBody[i] = flag == 1
	}
}

// localFix is a forward reference to a not-yet-decoded local value; applied
// after the body's instruction stream, in record order, exactly like the
// text parser's fixups — so use-list order matches text ingest bit for bit.
type localFix struct {
	in   *ir.Inst
	slot int
	def  int
}

// sharedFix defers a function/global operand attachment. Workers never
// touch the module-shared use lists; ReadModule applies these serially in
// (function, instruction, operand) order after all workers finish, which is
// the order the text parser produces and is worker-count invariant.
type sharedFix struct {
	in   *ir.Inst
	slot int
	v    ir.Value
}

// bodyResult is one body section's outcome, indexed by function.
type bodyResult struct {
	shared []sharedFix
	err    error
}

// decodeBody decodes one body payload into the function shell fi. Only
// this goroutine touches f, its params, blocks and instructions.
func (d *decoder) decodeBody(fi int, r *reader) ([]sharedFix, error) {
	f := d.m.Funcs[fi]
	fail := func(format string, args ...any) ([]sharedFix, error) {
		return nil, fmt.Errorf("wire: "+format+" (in @%s)", append(args, f.Name())...)
	}
	for _, prm := range f.Params {
		if nm := d.str(r, "parameter name"); nm != "" {
			if !ir.ValidLocalName(nm) {
				return fail("invalid parameter name %q", nm)
			}
			prm.SetName(nm)
		}
	}
	nb := r.count(2)
	if r.err != nil {
		return nil, r.err
	}
	if nb == 0 {
		return fail("body with no blocks")
	}
	blocks := make([]*ir.Block, nb)
	counts := make([]int, nb)
	f.Blocks = make([]*ir.Block, 0, nb)
	var total uint64
	for i := 0; i < nb; i++ {
		nm := d.str(r, "block name")
		cnt := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if nm != "" && !ir.ValidSymbolName(nm) {
			return fail("invalid block name %q", nm)
		}
		total += cnt
		// Each instruction needs at least 4 bytes (op, type, name, operand
		// count), so a count beyond that is corrupt — reject before sizing.
		if total > uint64(r.remaining())/4 {
			return fail("instruction count %d exceeds payload", total)
		}
		counts[i] = int(cnt)
		b := ir.NewBlock(nm)
		if cnt > 0 {
			b.Insts = make([]*ir.Inst, 0, cnt)
		}
		blocks[i] = b
		f.AppendBlock(b)
	}
	totalLocals := len(f.Params) + int(total)
	defs := make([]ir.Value, len(f.Params), totalLocals)
	for i, prm := range f.Params {
		defs[i] = prm
	}
	// Pass one decodes and fully validates the structure — instructions,
	// their shapes, and every operand reference flattened into refs — without
	// attaching operands.
	slab := ir.NewInstSlab(int(total))
	refs := make([]uint64, 0, 2*total)
	for bi, b := range blocks {
		for k := 0; k < counts[bi]; k++ {
			in, err := d.decodeInst(r, slab, nb, totalLocals, &refs)
			if err != nil {
				return nil, fmt.Errorf("%w (in @%s)", err, f.Name())
			}
			b.Append(in)
			defs = append(defs, in)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return fail("%d trailing bytes after body", r.remaining())
	}
	// Count uses per definition from the flat reference array so every use
	// list in the body comes out of one slab with exact capacity, instead of
	// growing each list by doubling.
	localUses := make([]int, totalLocals)
	blockUses := make([]int, nb)
	useTotal := 0
	for _, ref := range refs {
		switch ref & 7 {
		case tagLocal:
			localUses[ref>>3]++
			useTotal++
		case tagBlock:
			blockUses[ref>>3]++
			useTotal++
		}
	}
	useSlab := make([]ir.Use, useTotal)
	for i, prm := range f.Params {
		useSlab = ir.PresizeUses(prm, localUses[i], useSlab)
	}
	for i, b := range blocks {
		useSlab = ir.PresizeUses(b, blockUses[i], useSlab)
	}
	for di := len(f.Params); di < len(defs); di++ {
		useSlab = ir.PresizeUses(defs[di], localUses[di], useSlab)
	}
	// Pass two attaches operands in exactly the order the text parser does:
	// walking instructions in layout order, backward local references, block
	// and constant operands attach immediately; forward local references are
	// recorded and applied after the walk, in record order. Function and
	// global references are deferred to the caller (see sharedFix).
	var fixups []localFix
	var shared []sharedFix
	cursor, defPos := 0, len(f.Params)
	for _, b := range blocks {
		for _, in := range b.Insts {
			n := in.NumOperands()
			for i := 0; i < n; i++ {
				ref := refs[cursor]
				cursor++
				idx := int(ref >> 3)
				switch ref & 7 {
				case tagLocal:
					if idx < defPos {
						in.SetOperand(i, defs[idx])
					} else {
						fixups = append(fixups, localFix{in, i, idx})
					}
				case tagBlock:
					in.SetOperand(i, blocks[idx])
				case tagFunc:
					shared = append(shared, sharedFix{in, i, d.m.Funcs[idx]})
				case tagGlobal:
					shared = append(shared, sharedFix{in, i, d.m.Globals[idx]})
				case tagConst:
					in.SetOperand(i, d.consts[idx])
				}
			}
			defPos++
		}
	}
	for _, fx := range fixups {
		fx.in.SetOperand(fx.slot, defs[fx.def])
	}
	return shared, nil
}

// operandArityOK reports whether n operands is a well-formed count for op.
// These are the shapes the textual grammar guarantees; enforcing them at
// decode time keeps corrupt input from reaching accessors (Successors,
// PhiIncoming, the printer) that index by layout.
func operandArityOK(op ir.Opcode, n int) bool {
	switch op {
	case ir.OpRet:
		return n <= 1
	case ir.OpBr:
		return n == 1 || n == 3
	case ir.OpSwitch:
		return n >= 2 && n%2 == 0
	case ir.OpUnreachable, ir.OpAlloca, ir.OpLandingPad:
		return n == 0
	case ir.OpInvoke:
		return n >= 3
	case ir.OpResume, ir.OpLoad:
		return n == 1
	case ir.OpStore:
		return n == 2
	case ir.OpGEP, ir.OpCall:
		return n >= 1
	case ir.OpICmp, ir.OpFCmp:
		return n == 2
	case ir.OpPhi:
		return n >= 2 && n%2 == 0
	case ir.OpSelect:
		return n == 3
	default:
		if op.IsBinary() {
			return n == 2
		}
		return op.IsCast() && n == 1
	}
}

// mustBeBlock reports whether operand slot i of an op with n operands is a
// basic-block slot. Accessors type-assert these positions, so the decoder
// requires block references exactly there and nowhere else.
func mustBeBlock(op ir.Opcode, n, i int) bool {
	switch op {
	case ir.OpBr:
		return n == 1 || i >= 1
	case ir.OpSwitch, ir.OpPhi:
		return i%2 == 1
	case ir.OpInvoke:
		return i >= n-2
	default:
		return false
	}
}

// decodeInst decodes one instruction: the slab-allocated *ir.Inst with its
// extras and empty operand slots, plus its operand references — validated
// (tag, range, block-slot shape) and appended raw to refs for the caller's
// attach pass.
func (d *decoder) decodeInst(r *reader, slab *ir.InstSlab, nBlocks, totalLocals int, refs *[]uint64) (*ir.Inst, error) {
	op := ir.Opcode(r.uvarint())
	if r.err == nil && (op <= ir.OpInvalid || op >= ir.NumOpcodes) {
		r.fail("unknown opcode %d", op)
	}
	typ := d.typeAt(r)
	name := d.str(r, "instruction name")
	if r.err != nil {
		return nil, r.err
	}
	if !ir.ValidLocalName(name) {
		r.fail("invalid instruction name %q", name)
		return nil, r.err
	}
	// Opcode-specific extras precede the operand count in the stream; stage
	// them in locals so the instruction can be slab-allocated with its final
	// operand slot count in one step.
	var pred ir.CmpPred
	var alloc *ir.Type
	var clauses []string
	switch op {
	case ir.OpICmp, ir.OpFCmp:
		p := r.uvarint()
		if r.err == nil && (p == 0 || p > uint64(ir.PredOLE)) {
			r.fail("unknown comparison predicate %d", p)
		}
		pred = ir.CmpPred(p)
	case ir.OpAlloca:
		alloc = d.typeAt(r)
	case ir.OpLandingPad:
		nc := r.count(1)
		if nc > 0 {
			clauses = make([]string, nc)
			for i := range clauses {
				c := d.str(r, "landingpad clause")
				if r.err == nil && c != "cleanup" && !ir.ValidSymbolName(c) {
					r.fail("invalid landingpad clause %q", c)
				}
				clauses[i] = c
			}
		}
	}
	nops := r.count(1)
	if r.err != nil {
		return nil, r.err
	}
	if !operandArityOK(op, nops) {
		r.fail("%s with %d operands", op, nops)
		return nil, r.err
	}
	in := slab.NewInst(op, typ, nops)
	if name != "" {
		in.SetName(name)
	}
	in.Pred, in.Alloc, in.Clauses = pred, alloc, clauses
	for i := 0; i < nops; i++ {
		ref := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if isBlock := ref&7 == tagBlock; isBlock != mustBeBlock(op, nops, i) {
			r.fail("%s operand %d: block reference in a value slot or vice versa", op, i)
			return nil, r.err
		}
		idx := int(ref >> 3)
		switch ref & 7 {
		case tagLocal:
			if idx >= totalLocals {
				r.fail("local operand %d out of range", idx)
			}
		case tagBlock:
			if idx >= nBlocks {
				r.fail("block operand %d out of range", idx)
			}
		case tagFunc:
			if idx >= len(d.m.Funcs) {
				r.fail("function operand %d out of range", idx)
			}
		case tagGlobal:
			if idx >= len(d.m.Globals) {
				r.fail("global operand %d out of range", idx)
			}
		case tagConst:
			if idx >= len(d.consts) {
				r.fail("constant operand %d out of range", idx)
			}
		default:
			r.fail("unknown operand tag %d", ref&7)
		}
		*refs = append(*refs, ref)
	}
	if r.err != nil {
		return nil, r.err
	}
	return in, nil
}

// ReadModule decodes an fmir module from rd. The format is sectioned
// precisely so the input can be buffered once and then decoded without
// further copying; ReadModule slurps the stream and delegates to Decode.
func ReadModule(rd io.Reader, opts Options) (*ir.Module, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("wire: reading module: %w", err)
	}
	return Decode(data, opts)
}

// Decode decodes an fmir module from an in-memory buffer, zero-copy: the
// header and tables decode serially, then body sections — independently
// decodable, length-prefixed — fan out across opts.Workers goroutines as
// read-only subslices of data. The buffer must not be mutated until Decode
// returns; afterwards nothing in the module aliases it (strings and global
// initializers are copied out).
func Decode(data []byte, opts Options) (*ir.Module, error) {
	if !IsFMIR(data) {
		return nil, ErrBadMagic
	}
	hdr := &reader{buf: data, pos: len(Magic)}
	version := hdr.uvarint()
	if hdr.err == nil && version != Version {
		return nil, fmt.Errorf("wire: unsupported fmir version %d (have %d)", version, Version)
	}
	name := hdr.bytes(int(hdr.uvarint()))
	if hdr.err != nil {
		return nil, hdr.err
	}
	if bytes.ContainsAny(name, "\n\r") {
		return nil, fmt.Errorf("wire: module name %q contains line breaks", name)
	}
	d := &decoder{m: ir.NewModule(string(name))}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type bodyJob struct {
		fi   int
		off  int // payload offset past the function-index varint
		data []byte
	}
	var (
		results []bodyResult
		jobs    chan bodyJob
		wg      sync.WaitGroup
	)
	startPool := func() {
		results = make([]bodyResult, len(d.m.Funcs))
		if workers == 1 {
			return
		}
		jobs = make(chan bodyJob, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for jb := range jobs {
					r := &reader{buf: jb.data, pos: jb.off}
					shared, err := d.decodeBody(jb.fi, r)
					results[jb.fi] = bodyResult{shared: shared, err: err}
				}
			}()
		}
	}
	drain := func() {
		if jobs != nil {
			close(jobs)
			wg.Wait()
			jobs = nil
		}
	}

	for {
		id := hdr.byte()
		length := hdr.uvarint()
		if hdr.err != nil {
			drain()
			return nil, hdr.err
		}
		if id == secEnd {
			if length != 0 {
				drain()
				return nil, fmt.Errorf("wire: end section with nonzero length %d", length)
			}
			break
		}
		payload := hdr.bytes(int(length))
		if hdr.err != nil {
			drain()
			return nil, hdr.err
		}
		if id == secBody {
			if d.hasBody == nil {
				drain()
				return nil, fmt.Errorf("wire: body section before funcs section")
			}
			if results == nil {
				startPool()
			}
			pr := &reader{buf: payload}
			fiv := pr.uvarint()
			if pr.err != nil || fiv >= uint64(len(d.m.Funcs)) {
				drain()
				return nil, fmt.Errorf("wire: body section with bad function index")
			}
			jb := bodyJob{fi: int(fiv), off: pr.pos, data: payload}
			if !d.hasBody[jb.fi] {
				drain()
				return nil, fmt.Errorf("wire: body for declaration @%s", d.m.Funcs[jb.fi].Name())
			}
			if d.gotBody[jb.fi] {
				drain()
				return nil, fmt.Errorf("wire: duplicate body for @%s", d.m.Funcs[jb.fi].Name())
			}
			d.gotBody[jb.fi] = true
			if jobs != nil {
				jobs <- jb
			} else {
				r := &reader{buf: jb.data, pos: jb.off}
				shared, err := d.decodeBody(jb.fi, r)
				results[jb.fi] = bodyResult{shared: shared, err: err}
			}
			continue
		}
		// Table sections decode serially and must precede every body:
		// workers read the tables lock-free, so mutating them after body
		// decode has started would race.
		if results != nil {
			drain()
			return nil, fmt.Errorf("wire: section %d after body sections", id)
		}
		r := &reader{buf: payload}
		switch id {
		case secStrings:
			d.decodeStrings(r)
		case secTypes:
			d.decodeTypes(r)
		case secConsts:
			d.decodeConsts(r)
		case secGlobals:
			d.decodeGlobals(r)
		case secFuncs:
			d.decodeFuncs(r)
		default:
			r.fail("unknown section id %d", id)
		}
		if r.err == nil && r.remaining() != 0 {
			r.fail("%d trailing bytes in section %d", r.remaining(), id)
		}
		if r.err != nil {
			drain()
			return nil, r.err
		}
	}
	drain()
	if hdr.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after end section", hdr.remaining())
	}

	// Surface worker errors and missing bodies in function order so the
	// reported error is deterministic.
	for fi := range results {
		if results[fi].err != nil {
			return nil, results[fi].err
		}
	}
	for fi, want := range d.hasBody {
		if want && !d.gotBody[fi] {
			return nil, fmt.Errorf("wire: missing body for @%s", d.m.Funcs[fi].Name())
		}
	}
	// Attach function/global operands serially in (function, instruction,
	// operand) order — the order a serial text parse produces — so shared
	// use lists are identical regardless of worker count or scheduling.
	for fi := range results {
		for _, sf := range results[fi].shared {
			sf.in.SetOperand(sf.slot, sf.v)
		}
	}
	return d.m, nil
}
