package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fmsa/internal/ir"
)

// constKey identifies a constant for interning: kind, interned type pointer
// and value bits (Float64bits for floats, so NaN payloads dedup exactly).
type constKey struct {
	kind byte
	typ  *ir.Type
	bits uint64
}

// encoder interns strings, types and constants in first-use order while the
// module is walked, assigning each the next table index. All maps are
// lookup-only; iteration always follows module order, so output bytes are
// deterministic for a given module.
type encoder struct {
	strIdx map[string]uint32
	strs   []string // entries for indices 1..len; index 0 is the empty string
	typIdx map[*ir.Type]uint32
	typs   []*ir.Type
	cstIdx map[constKey]uint32
	csts   []ir.Constant
	fnIdx  map[*ir.Func]uint32
	glIdx  map[*ir.Global]uint32
}

func newEncoder() *encoder {
	return &encoder{
		strIdx: map[string]uint32{},
		typIdx: map[*ir.Type]uint32{},
		cstIdx: map[constKey]uint32{},
		fnIdx:  map[*ir.Func]uint32{},
		glIdx:  map[*ir.Global]uint32{},
	}
}

func (e *encoder) strID(s string) uint64 {
	if s == "" {
		return 0
	}
	if id, ok := e.strIdx[s]; ok {
		return uint64(id)
	}
	e.strs = append(e.strs, s)
	id := uint32(len(e.strs)) // 1-based
	e.strIdx[s] = id
	return uint64(id)
}

// typeID interns t and its component types in post-order, so every table
// entry references only earlier entries and the decoder rebuilds the table
// in one pass.
func (e *encoder) typeID(t *ir.Type) uint64 {
	if id, ok := e.typIdx[t]; ok {
		return uint64(id)
	}
	switch t.Kind {
	case ir.PointerKind, ir.ArrayKind:
		e.typeID(t.Elem)
	case ir.StructKind:
		for _, f := range t.Fields {
			e.typeID(f)
		}
	case ir.FuncKind:
		e.typeID(t.Ret)
		for _, f := range t.Fields {
			e.typeID(f)
		}
	}
	e.typs = append(e.typs, t)
	id := uint32(len(e.typs) - 1)
	e.typIdx[t] = id
	return uint64(id)
}

func (e *encoder) constID(c ir.Constant) (uint64, error) {
	var key constKey
	switch x := c.(type) {
	case *ir.ConstInt:
		key = constKey{constInt, x.Type(), uint64(x.V)}
	case *ir.ConstFloat:
		key = constKey{constFloat, x.Type(), math.Float64bits(x.V)}
	case *ir.Undef:
		key = constKey{constUndef, x.Type(), 0}
	case *ir.ConstNull:
		key = constKey{constNull, x.Type(), 0}
	default:
		return 0, fmt.Errorf("wire: unsupported constant %T", c)
	}
	if id, ok := e.cstIdx[key]; ok {
		return uint64(id), nil
	}
	e.typeID(c.Type())
	e.csts = append(e.csts, c)
	id := uint32(len(e.csts) - 1)
	e.cstIdx[key] = id
	return uint64(id), nil
}

// operandRef encodes one operand as (index<<3 | tag).
func (e *encoder) operandRef(locals map[ir.Value]uint32, blocks map[*ir.Block]uint32, v ir.Value) (uint64, error) {
	switch x := v.(type) {
	case *ir.Block:
		id, ok := blocks[x]
		if !ok {
			return 0, fmt.Errorf("wire: operand block %q outside function", x.Name())
		}
		return uint64(id)<<3 | tagBlock, nil
	case *ir.Func:
		id, ok := e.fnIdx[x]
		if !ok {
			return 0, fmt.Errorf("wire: operand function @%s outside module", x.Name())
		}
		return uint64(id)<<3 | tagFunc, nil
	case *ir.Global:
		id, ok := e.glIdx[x]
		if !ok {
			return 0, fmt.Errorf("wire: operand global @%s outside module", x.Name())
		}
		return uint64(id)<<3 | tagGlobal, nil
	case *ir.Param, *ir.Inst:
		id, ok := locals[v]
		if !ok {
			return 0, fmt.Errorf("wire: local operand outside function")
		}
		return uint64(id)<<3 | tagLocal, nil
	}
	if c, ok := v.(ir.Constant); ok {
		id, err := e.constID(c)
		if err != nil {
			return 0, err
		}
		return id<<3 | tagConst, nil
	}
	return 0, fmt.Errorf("wire: unsupported operand %T", v)
}

// encodeBody serializes one function definition as a body-section payload.
// Local defs are numbered params first, then every instruction (void ones
// included) in layout order; the decoder reproduces the same numbering.
func (e *encoder) encodeBody(fi uint32, f *ir.Func) ([]byte, error) {
	locals := make(map[ir.Value]uint32, len(f.Params)+f.NumInsts())
	for i, prm := range f.Params {
		locals[prm] = uint32(i)
	}
	next := uint32(len(f.Params))
	blocks := make(map[*ir.Block]uint32, len(f.Blocks))
	for bi, b := range f.Blocks {
		blocks[b] = uint32(bi)
		for _, in := range b.Insts {
			locals[in] = next
			next++
		}
	}
	p := make([]byte, 0, 16+8*int(next))
	p = appendUvarint(p, uint64(fi))
	for _, prm := range f.Params {
		p = appendUvarint(p, e.strID(prm.Name()))
	}
	// Block headers first: (name, instruction count) pairs let the decoder
	// pre-create every block (branch targets may be forward) and pre-size
	// its instruction slice before any instruction is read.
	p = appendUvarint(p, uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		p = appendUvarint(p, e.strID(b.Name()))
		p = appendUvarint(p, uint64(len(b.Insts)))
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			var err error
			if p, err = e.encodeInst(locals, blocks, p, in); err != nil {
				return nil, fmt.Errorf("%w (in @%s)", err, f.Name())
			}
		}
	}
	return p, nil
}

func (e *encoder) encodeInst(locals map[ir.Value]uint32, blocks map[*ir.Block]uint32, p []byte, in *ir.Inst) ([]byte, error) {
	p = appendUvarint(p, uint64(in.Op))
	p = appendUvarint(p, e.typeID(in.Type()))
	p = appendUvarint(p, e.strID(in.Name()))
	switch in.Op {
	case ir.OpICmp, ir.OpFCmp:
		p = appendUvarint(p, uint64(in.Pred))
	case ir.OpAlloca:
		if in.Alloc == nil {
			return nil, fmt.Errorf("wire: alloca without allocated type")
		}
		p = appendUvarint(p, e.typeID(in.Alloc))
	case ir.OpLandingPad:
		p = appendUvarint(p, uint64(len(in.Clauses)))
		for _, c := range in.Clauses {
			p = appendUvarint(p, e.strID(c))
		}
	}
	p = appendUvarint(p, uint64(in.NumOperands()))
	for _, v := range in.Operands() {
		ref, err := e.operandRef(locals, blocks, v)
		if err != nil {
			return nil, err
		}
		p = appendUvarint(p, ref)
	}
	return p, nil
}

// stringsPayload serializes the interned string table.
func (e *encoder) stringsPayload() []byte {
	size := 4
	for _, s := range e.strs {
		size += len(s) + 2
	}
	p := make([]byte, 0, size)
	p = appendUvarint(p, uint64(len(e.strs)))
	for _, s := range e.strs {
		p = appendString(p, s)
	}
	return p
}

// typesPayload serializes the type table. Entries reference earlier entries
// only (guaranteed by typeID's post-order registration).
func (e *encoder) typesPayload() []byte {
	p := make([]byte, 0, 4+8*len(e.typs))
	p = appendUvarint(p, uint64(len(e.typs)))
	for _, t := range e.typs {
		p = append(p, byte(t.Kind))
		switch t.Kind {
		case ir.IntKind, ir.FloatKind:
			p = appendUvarint(p, uint64(t.Bits))
		case ir.PointerKind:
			p = appendUvarint(p, uint64(e.typIdx[t.Elem]))
		case ir.ArrayKind:
			p = appendUvarint(p, uint64(t.Len))
			p = appendUvarint(p, uint64(e.typIdx[t.Elem]))
		case ir.StructKind:
			p = appendUvarint(p, uint64(len(t.Fields)))
			for _, f := range t.Fields {
				p = appendUvarint(p, uint64(e.typIdx[f]))
			}
		case ir.FuncKind:
			variadic := byte(0)
			if t.Variadic {
				variadic = 1
			}
			p = append(p, variadic)
			p = appendUvarint(p, uint64(e.typIdx[t.Ret]))
			p = appendUvarint(p, uint64(len(t.Fields)))
			for _, f := range t.Fields {
				p = appendUvarint(p, uint64(e.typIdx[f]))
			}
		}
	}
	return p
}

// constsPayload serializes the constant table.
func (e *encoder) constsPayload() []byte {
	p := make([]byte, 0, 4+8*len(e.csts))
	p = appendUvarint(p, uint64(len(e.csts)))
	for _, c := range e.csts {
		ti := uint64(e.typIdx[c.Type()])
		switch x := c.(type) {
		case *ir.ConstInt:
			p = append(p, constInt)
			p = appendUvarint(p, ti)
			p = appendUvarint(p, zigzag(x.V))
		case *ir.ConstFloat:
			p = append(p, constFloat)
			p = appendUvarint(p, ti)
			p = appendUvarint(p, math.Float64bits(x.V))
		case *ir.Undef:
			p = append(p, constUndef)
			p = appendUvarint(p, ti)
		case *ir.ConstNull:
			p = append(p, constNull)
			p = appendUvarint(p, ti)
		}
	}
	return p
}

func writeSection(bw *bufio.Writer, id byte, payload []byte) {
	bw.WriteByte(id)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	bw.Write(hdr[:n])
	bw.Write(payload)
}

// WriteModule encodes m in fmir format onto w through a buffered writer.
func WriteModule(w io.Writer, m *ir.Module) error {
	e := newEncoder()
	for i, f := range m.Funcs {
		e.fnIdx[f] = uint32(i)
	}
	for i, g := range m.Globals {
		e.glIdx[g] = uint32(i)
	}

	// Walk in module order so table indices (and therefore output bytes)
	// are deterministic: globals, then function shells, then bodies.
	gp := make([]byte, 0, 4+16*len(m.Globals))
	gp = appendUvarint(gp, uint64(len(m.Globals)))
	for _, g := range m.Globals {
		gp = appendUvarint(gp, e.strID(g.Name()))
		gp = appendUvarint(gp, e.typeID(g.ValueType()))
		gp = appendUvarint(gp, uint64(g.Linkage))
		if g.Init == nil {
			gp = append(gp, 0)
		} else {
			gp = append(gp, 1)
			gp = appendUvarint(gp, uint64(len(g.Init)))
			gp = append(gp, g.Init...)
		}
	}

	fp := make([]byte, 0, 4+12*len(m.Funcs))
	fp = appendUvarint(fp, uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		fp = appendUvarint(fp, e.strID(f.Name()))
		fp = appendUvarint(fp, e.typeID(f.Sig()))
		fp = appendUvarint(fp, uint64(f.Linkage))
		fp = appendUvarint(fp, f.Hotness)
		if f.IsDecl() {
			fp = append(fp, 0)
		} else {
			fp = append(fp, 1)
		}
	}

	bodies := make([][]byte, 0, len(m.Funcs))
	for i, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		bp, err := e.encodeBody(uint32(i), f)
		if err != nil {
			return err
		}
		bodies = append(bodies, bp)
	}

	bw := bufio.NewWriter(w)
	bw.Write(Magic[:])
	hdr := make([]byte, 0, 8+len(m.Name))
	hdr = appendUvarint(hdr, Version)
	hdr = appendString(hdr, m.Name)
	bw.Write(hdr)
	writeSection(bw, secStrings, e.stringsPayload())
	writeSection(bw, secTypes, e.typesPayload())
	writeSection(bw, secConsts, e.constsPayload())
	writeSection(bw, secGlobals, gp)
	writeSection(bw, secFuncs, fp)
	for _, bp := range bodies {
		writeSection(bw, secBody, bp)
	}
	writeSection(bw, secEnd, nil)
	return bw.Flush()
}

// Encode returns m in fmir format as a byte slice.
func Encode(m *ir.Module) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteModule(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
