package lsh

import (
	"reflect"
	"testing"

	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

// sigFor generates a function from the spec and returns its signature.
func sigFor(m *ir.Module, spec workload.FuncSpec) *fingerprint.Signature {
	return fingerprint.ComputeSignature(workload.Generate(m, spec))
}

// cloneFamily builds n const-variant clones (identical shingles) plus k
// unrelated functions and returns all signatures, clones first.
func cloneFamily(t *testing.T, n, k int) []*fingerprint.Signature {
	t.Helper()
	m := ir.NewModule("lsh")
	base := workload.FuncSpec{
		Name: "c0", Seed: 7, Scalar: ir.I64(), NumParams: 2, Regions: 4, OpsPerBlock: 8,
	}
	var sigs []*fingerprint.Signature
	for i := 0; i < n; i++ {
		spec := base
		spec.Name = "c" + string(rune('0'+i))
		spec.ConstSalt = int64(i)
		sigs = append(sigs, sigFor(m, spec))
	}
	for i := 0; i < k; i++ {
		spec := workload.FuncSpec{
			Name: "u" + string(rune('0'+i)), Seed: int64(1000 + 13*i),
			Scalar: ir.F32(), NumParams: 1, Regions: 2, OpsPerBlock: 4,
		}
		sigs = append(sigs, sigFor(m, spec))
	}
	return sigs
}

func TestProbeFindsClones(t *testing.T) {
	sigs := cloneFamily(t, 3, 4)
	ix := New(Params{})
	for i, s := range sigs {
		ix.Insert(int32(i), s)
	}
	got := ix.Probe(sigs[0], 0)
	for _, want := range []int32{1, 2} {
		found := false
		for _, id := range got {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("clone %d missing from probe result %v", want, got)
		}
	}
	// Results must be deduplicated, ascending and self-free.
	for i, id := range got {
		if id == 0 {
			t.Error("probe returned self")
		}
		if i > 0 && got[i-1] >= id {
			t.Errorf("probe result not strictly ascending: %v", got)
		}
	}
}

func TestRemoveKeepsIndexConsistent(t *testing.T) {
	sigs := cloneFamily(t, 4, 2)
	ix := New(DefaultParams())
	for i, s := range sigs {
		ix.Insert(int32(i), s)
	}
	ix.Remove(1)
	ix.Remove(5)
	ix.Remove(99) // unknown: no-op
	if ix.Len() != 4 {
		t.Fatalf("Len = %d after removals, want 4", ix.Len())
	}
	for _, id := range ix.Probe(sigs[0], 0) {
		if id == 1 || id == 5 {
			t.Errorf("removed id %d still probed", id)
		}
	}
	// Re-probing after removal still finds the surviving clones (unrelated
	// members may legitimately collide too — only the clones are required).
	got := ix.Probe(sigs[0], 0)
	for _, want := range []int32{2, 3} {
		found := false
		for _, id := range got {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("surviving clone %d missing after removals: %v", want, got)
		}
	}
}

func TestCollideMatchesProbe(t *testing.T) {
	sigs := cloneFamily(t, 3, 5)
	p := DefaultParams()
	ix := New(p)
	for i, s := range sigs {
		ix.Insert(int32(i), s)
	}
	for i, a := range sigs {
		probed := map[int32]bool{}
		for _, id := range ix.Probe(a, int32(i)) {
			probed[id] = true
		}
		for j, b := range sigs {
			if i == j {
				continue
			}
			if Collide(a, b, p) != probed[int32(j)] {
				t.Errorf("Collide(%d,%d)=%v disagrees with Probe membership %v",
					i, j, Collide(a, b, p), probed[int32(j)])
			}
		}
	}
}

func TestProbeBatchMatchesSerialProbe(t *testing.T) {
	sigs := cloneFamily(t, 4, 4)
	ix := New(DefaultParams())
	selves := make([]int32, len(sigs))
	for i, s := range sigs {
		ix.Insert(int32(i), s)
		selves[i] = int32(i)
	}
	for _, workers := range []int{1, 4} {
		got := ix.ProbeBatch(sigs, selves, workers)
		for i := range sigs {
			want := ix.Probe(sigs[i], selves[i])
			if !reflect.DeepEqual(got[i], want) {
				t.Errorf("workers=%d query %d: batch %v != serial %v", workers, i, got[i], want)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	sigs := cloneFamily(t, 3, 1)
	ix := New(DefaultParams())
	for i, s := range sigs {
		ix.Insert(int32(i), s)
	}
	st := ix.ComputeStats()
	if st.Members != 4 {
		t.Errorf("Members = %d, want 4", st.Members)
	}
	if st.MaxBucket < 3 {
		t.Errorf("MaxBucket = %d, want >= 3 (the clone bucket)", st.MaxBucket)
	}
	if st.Buckets == 0 {
		t.Error("no buckets counted")
	}
}

func TestInvalidBandingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized banding did not panic")
		}
	}()
	New(Params{Bands: fingerprint.SigLanes, Rows: 2})
}

// snapshotBuckets deep-copies the index's bucket state for exact comparison.
func snapshotBuckets(ix *Index) []map[uint64][]int32 {
	out := make([]map[uint64][]int32, len(ix.buckets))
	for band, m := range ix.buckets {
		out[band] = make(map[uint64][]int32, len(m))
		for k, b := range m {
			out[band][k] = append([]int32(nil), b...)
		}
	}
	return out
}

// TestRemoveInsertRestoresState is the warm-session eviction contract:
// removing any subset of members and re-inserting them with their original
// signatures must restore the exact bucket state — byte-for-byte, not just
// probe-equivalent — regardless of removal or reinsertion order. Sessions
// rely on this to roll back a run's retire/admit churn and to treat
// incremental evict/reinsert as equivalent to a rebuild.
func TestRemoveInsertRestoresState(t *testing.T) {
	sigs := cloneFamily(t, 4, 4)
	ix := New(DefaultParams())
	for i, s := range sigs {
		ix.Insert(int32(i), s)
	}
	want := snapshotBuckets(ix)
	wantMembers := ix.Members()

	// Remove an interior subset (clones and unrelated members alike), in a
	// scattered order, then re-insert in a different order.
	for _, id := range []int32{5, 1, 3, 6} {
		ix.Remove(id)
	}
	for _, id := range []int32{3, 6, 1, 5} {
		ix.Insert(id, sigs[id])
	}

	if !reflect.DeepEqual(ix.Members(), wantMembers) {
		t.Fatalf("members after remove+insert = %v, want %v", ix.Members(), wantMembers)
	}
	got := snapshotBuckets(ix)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bucket state not restored by remove+insert round trip")
	}
	// And every bucket is sorted ascending (the canonical-form invariant the
	// restoration property rests on).
	for band, m := range got {
		for k, b := range m {
			for i := 1; i < len(b); i++ {
				if b[i-1] >= b[i] {
					t.Fatalf("band %d bucket %d not sorted: %v", band, k, b)
				}
			}
		}
	}
}
