// Package lsh implements a banded MinHash index over function signatures
// (fingerprint.Signature): the classic locality-sensitive-hashing scheme for
// Jaccard similarity. The signature's lanes are split into Bands bands of
// Rows consecutive lanes each; two members land in the same bucket of a band
// exactly when all Rows lanes of that band agree, which happens with
// probability J^Rows for weighted Jaccard J. Probing returns every member
// sharing at least one band bucket — probability 1-(1-J^Rows)^Bands — so
// similar pairs are found near-certainly while dissimilar pairs are almost
// never touched, replacing the quadratic all-pairs scan of the exact ranking
// with per-bucket work.
//
// The index is deliberately deterministic — and, since the warm-session
// work, content-addressed: members are integer ids (the exploration pool
// assigns pool-insertion indices, sessions assign stable per-name ids),
// buckets hold their ids sorted ascending, and probe results are returned
// sorted ascending. Sorted buckets make the index state a pure function of
// the live (id, signature) set: Remove followed by Insert of the same id and
// signature restores the exact pre-removal state, which is what lets a merge
// session roll back a run's retire/admit churn and what makes incremental
// evict/reinsert equivalent to a rebuild. Inserts and removals keep the
// index consistent as merges retire pool functions and add merged ones.
//
// The index itself is not safe for concurrent mutation; ProbeBatch performs
// read-only probes for many queries across a bounded worker pool.
package lsh

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"fmsa/internal/fingerprint"
)

// Params configures the banding: Bands bands of Rows consecutive signature
// lanes. Bands×Rows must not exceed fingerprint.SigLanes; the zero value
// selects DefaultParams.
type Params struct {
	Bands, Rows int
}

// DefaultParams returns the banding used when Params is zero: 21 bands of 6
// rows over the 128-lane signature. The collision s-curve crosses one half
// near J ≈ 0.57 while the dissimilar tail stays dark (P ≈ 0.1% at J = 0.2),
// and top-ranked candidate pairs — clone families with high shingle overlap —
// are recalled near-certainly. Measured on the largest synthetic corpus this
// banding probes under a quarter of the pairs the exact scan visits for ≈99%
// top-1 recall; flatter bandings (more bands, fewer rows) push recall
// marginally higher but probe several times more of the pool.
func DefaultParams() Params { return Params{Bands: 21, Rows: 6} }

// NumBands returns the band count after zero-value resolution — the number
// of keys AppendBandKeys produces and NewFromBandKeys expects per member.
func (p Params) NumBands() int { return p.normalized().Bands }

// normalized resolves the zero value and validates the banding.
func (p Params) normalized() Params {
	if p.Bands == 0 && p.Rows == 0 {
		return DefaultParams()
	}
	if p.Bands <= 0 || p.Rows <= 0 || p.Bands*p.Rows > fingerprint.SigLanes {
		panic(fmt.Sprintf("lsh: invalid banding %d×%d over %d lanes", p.Bands, p.Rows, fingerprint.SigLanes))
	}
	return p
}

// bandKey condenses one band's rows into a bucket key.
func bandKey(sig *fingerprint.Signature, band, rows int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, lane := range sig[band*rows : (band+1)*rows] {
		h = (h ^ lane) * prime
	}
	return h
}

// AppendBandKeys appends sig's bucket key for every band of the banding to
// dst and returns the extended slice — the exact keys Insert would compute.
// Persisting them next to a signature (the simdb segment does) lets a later
// InsertKeyed rehydrate the index without re-hashing any band.
func AppendBandKeys(p Params, sig *fingerprint.Signature, dst []uint64) []uint64 {
	p = p.normalized()
	for band := 0; band < p.Bands; band++ {
		dst = append(dst, bandKey(sig, band, p.Rows))
	}
	return dst
}

// Collide reports whether two signatures share at least one band — the
// bucket-mate relation Probe realizes, computed directly from the signatures
// without touching an index. The exploration cache uses it to decide whether
// a newly merged function would be probed by a pending ranking.
func Collide(a, b *fingerprint.Signature, p Params) bool {
	p = p.normalized()
	for band := 0; band < p.Bands; band++ {
		match := true
		for r := 0; r < p.Rows; r++ {
			if a[band*p.Rows+r] != b[band*p.Rows+r] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Index is the banded MinHash index.
type Index struct {
	p Params
	// buckets[band] maps a band key to member ids sorted ascending.
	buckets []map[uint64][]int32
	// keys remembers each member's band keys for removal.
	keys map[int32][]uint64
	// keyArena batch-allocates the per-member band-key slices: inserts carve
	// Bands-sized windows off one chunk instead of allocating each slice.
	// Removed members' windows stay pinned until their chunk dies — a few
	// hundred bytes per churned member, traded for allocation-free inserts
	// on the rehydration path.
	keyArena []uint64
	// scratches pools per-probe dedup state so concurrent ProbeBatch
	// goroutines never share one.
	scratches sync.Pool
}

// probeScratch deduplicates one probe's bucket members without a map: ids are
// dense pool indices, so an id is visited iff stamp[id] holds the current
// generation. Bumping gen invalidates the whole array in O(1).
type probeScratch struct {
	stamp []uint32
	gen   uint32
}

// New returns an empty index with the given banding.
func New(p Params) *Index { return NewSized(p, 0) }

// NewSized returns an empty index with the given banding, pre-sizing every
// band map and the key table for n expected members so that rehydrating a
// known-size corpus (a simdb segment, a session pool) never rehashes. Growth
// past n still works; n is a hint, not a cap.
func NewSized(p Params, n int) *Index {
	p = p.normalized()
	ix := &Index{p: p, buckets: make([]map[uint64][]int32, p.Bands), keys: make(map[int32][]uint64, n)}
	for i := range ix.buckets {
		ix.buckets[i] = make(map[uint64][]int32, n)
	}
	if n > 0 {
		ix.keyArena = make([]uint64, 0, n*p.Bands)
	}
	ix.scratches.New = func() any { return &probeScratch{} }
	return ix
}

// NewFromSignatures bulk-builds the index a NewSized+Insert loop over dense
// ids would produce: member i is sigs[i], nil entries are skipped. The final
// state is bit-identical to inserting the non-nil signatures in ascending id
// order — buckets sorted ascending, same band keys — but construction carves
// every bucket at its exact final size from one arena, so rehydrating a large
// corpus performs a handful of allocations instead of one per bucket growth
// step, and bands are built concurrently: each band's bucket map is the work
// of exactly one goroutine and depends only on the signatures, so the result
// is identical for any worker interleaving. This is the warm-startup path: a
// simdb segment replay knows the whole live set up front, and bulk
// construction is what keeps index rebuild from eating the replay's
// recompute savings.
func NewFromSignatures(p Params, sigs []*fingerprint.Signature) *Index {
	ix := NewSized(p, len(sigs))
	signed := make([]int32, 0, len(sigs))
	wins := make([][]uint64, 0, len(sigs))
	for id, sig := range sigs {
		if sig == nil {
			continue
		}
		if cap(ix.keyArena)-len(ix.keyArena) < ix.p.Bands {
			ix.keyArena = make([]uint64, 0, 256*ix.p.Bands)
		}
		keys := ix.keyArena[len(ix.keyArena) : len(ix.keyArena)+ix.p.Bands : len(ix.keyArena)+ix.p.Bands]
		ix.keyArena = ix.keyArena[:len(ix.keyArena)+ix.p.Bands]
		ix.keys[int32(id)] = keys
		signed = append(signed, int32(id))
		wins = append(wins, keys)
	}
	if len(signed) == 0 {
		return ix
	}
	// Per band: compute every member's band key, count members per bucket
	// key, carve exact-capacity bucket slices off the band's slice of one
	// shared arena, then fill in ascending id order so the buckets come out
	// sorted without any insertion shifting. Bands are independent: member
	// key windows are written one element per band, bucket maps and arena
	// slices are per-band, so the bands fan out across a bounded worker pool.
	idArena := make([]int32, len(signed)*ix.p.Bands)
	buildBand := func(band int, counts map[uint64]int32) {
		for i, id := range signed {
			k := bandKey(sigs[id], band, ix.p.Rows)
			wins[i][band] = k
			counts[k]++
		}
		seg := idArena[band*len(signed) : (band+1)*len(signed)]
		bmap := ix.buckets[band]
		for i, id := range signed {
			k := wins[i][band]
			b, ok := bmap[k]
			if !ok {
				c := counts[k]
				b = seg[0:0:c]
				seg = seg[c:]
			}
			bmap[k] = append(b, id)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > ix.p.Bands {
		workers = ix.p.Bands
	}
	if workers <= 1 {
		counts := make(map[uint64]int32, len(signed))
		for band := 0; band < ix.p.Bands; band++ {
			clear(counts)
			buildBand(band, counts)
		}
		return ix
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			counts := make(map[uint64]int32, len(signed))
			for {
				band := int(atomic.AddInt64(&next, 1)) - 1
				if band >= ix.p.Bands {
					return
				}
				clear(counts)
				buildBand(band, counts)
			}
		}()
	}
	wg.Wait()
	return ix
}

// NewFromBandKeys bulk-builds the index from precomputed band keys: member i
// is keys[i] when it holds exactly Bands keys (AppendBandKeys order); other
// entries are skipped. The final state is bit-identical to InsertKeyed of the
// members in ascending id order, but no band is ever hashed, every bucket is
// carved at its exact final size from one arena, and the members' key
// windows are aliased rather than copied — the construction allocates a
// handful of objects for a corpus-sized input instead of one per bucket
// growth step. This is the segment-rehydration fast path: a simdb store
// persists each record's band keys, so a warm start files every member
// straight into its buckets.
func NewFromBandKeys(p Params, keys [][]uint64) *Index {
	p = p.normalized()
	ix := &Index{p: p, buckets: make([]map[uint64][]int32, p.Bands)}
	ix.scratches.New = func() any { return &probeScratch{} }
	signed := make([]int32, 0, len(keys))
	for id, k := range keys {
		if len(k) == p.Bands {
			signed = append(signed, int32(id))
		}
	}
	ix.keys = make(map[int32][]uint64, len(signed))
	for _, id := range signed {
		ix.keys[id] = keys[id]
	}
	if len(signed) == 0 {
		for band := range ix.buckets {
			ix.buckets[band] = map[uint64][]int32{}
		}
		return ix
	}
	// Per band: count members per bucket key, size the band map to its exact
	// distinct-key count, carve exact-capacity bucket slices off the band's
	// slice of one shared arena, then fill in ascending id order so buckets
	// come out sorted without any insertion shifting.
	idArena := make([]int32, len(signed)*p.Bands)
	counts := make(map[uint64]int32, len(signed))
	for band := 0; band < p.Bands; band++ {
		clear(counts)
		for _, id := range signed {
			counts[keys[id][band]]++
		}
		bmap := make(map[uint64][]int32, len(counts))
		seg := idArena[band*len(signed) : (band+1)*len(signed)]
		for _, id := range signed {
			k := keys[id][band]
			b, ok := bmap[k]
			if !ok {
				c := counts[k]
				b = seg[0:0:c]
				seg = seg[c:]
			}
			bmap[k] = append(b, id)
		}
		ix.buckets[band] = bmap
	}
	return ix
}

// Params returns the index's banding.
func (ix *Index) Params() Params { return ix.p }

// Len returns the number of members.
func (ix *Index) Len() int { return len(ix.keys) }

// Insert adds a member at its sorted bucket positions. Ids must be unique
// among live members; a removed id may be re-inserted, and re-inserting it
// with its original signature restores the exact pre-removal bucket state.
func (ix *Index) Insert(id int32, sig *fingerprint.Signature) {
	keys := ix.carveKeys(id)
	for band := 0; band < ix.p.Bands; band++ {
		keys[band] = bandKey(sig, band, ix.p.Rows)
	}
	ix.insertKeyed(id, keys)
}

// InsertKeyed adds a member from its precomputed band keys (AppendBandKeys
// order) without touching the signature — the rehydration fast path for
// stores that persisted the keys. The resulting index state is bit-identical
// to Insert of the signature the keys were computed from.
func (ix *Index) InsertKeyed(id int32, bandKeys []uint64) {
	if len(bandKeys) != ix.p.Bands {
		panic(fmt.Sprintf("lsh: InsertKeyed got %d band keys, banding has %d bands", len(bandKeys), ix.p.Bands))
	}
	keys := ix.carveKeys(id)
	copy(keys, bandKeys)
	ix.insertKeyed(id, keys)
}

// carveKeys reserves the member's band-key window off the arena and checks
// id uniqueness.
func (ix *Index) carveKeys(id int32) []uint64 {
	if _, dup := ix.keys[id]; dup {
		panic(fmt.Sprintf("lsh: duplicate insert of id %d", id))
	}
	if cap(ix.keyArena)-len(ix.keyArena) < ix.p.Bands {
		ix.keyArena = make([]uint64, 0, 256*ix.p.Bands)
	}
	keys := ix.keyArena[len(ix.keyArena) : len(ix.keyArena)+ix.p.Bands : len(ix.keyArena)+ix.p.Bands]
	ix.keyArena = ix.keyArena[:len(ix.keyArena)+ix.p.Bands]
	return keys
}

// insertKeyed files id into its sorted bucket position in every band; keys
// must be the member's arena window, already filled.
func (ix *Index) insertKeyed(id int32, keys []uint64) {
	for band, k := range keys {
		b := ix.buckets[band][k]
		pos := len(b)
		for pos > 0 && b[pos-1] > id {
			pos--
		}
		b = append(b, 0)
		copy(b[pos+1:], b[pos:])
		b[pos] = id
		ix.buckets[band][k] = b
	}
	ix.keys[id] = keys
}

// Remove deletes a member; unknown ids are a no-op. Bucket order of the
// remaining members is preserved (still sorted ascending).
func (ix *Index) Remove(id int32) {
	keys, ok := ix.keys[id]
	if !ok {
		return
	}
	delete(ix.keys, id)
	for band, k := range keys {
		b := ix.buckets[band][k]
		for i, m := range b {
			if m == id {
				b = append(b[:i], b[i+1:]...)
				break
			}
		}
		if len(b) == 0 {
			delete(ix.buckets[band], k)
		} else {
			ix.buckets[band][k] = b
		}
	}
}

// Members returns the live member ids sorted ascending.
func (ix *Index) Members() []int32 {
	out := make([]int32, 0, len(ix.keys))
	for id := range ix.keys {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Probe returns the ids of every member sharing at least one band bucket
// with sig, excluding self, deduplicated and sorted ascending (pool
// insertion order — the deterministic tie-break order of the ranking).
func (ix *Index) Probe(sig *fingerprint.Signature, self int32) []int32 {
	sc := ix.scratches.Get().(*probeScratch)
	sc.gen++
	if sc.gen == 0 { // generation wrapped: the stale stamps are ambiguous
		clear(sc.stamp)
		sc.gen = 1
	}
	var out []int32
	for band := 0; band < ix.p.Bands; band++ {
		for _, id := range ix.buckets[band][bandKey(sig, band, ix.p.Rows)] {
			if id == self {
				continue
			}
			if int(id) >= len(sc.stamp) {
				grown := make([]uint32, int(id)+1)
				copy(grown, sc.stamp)
				sc.stamp = grown
			}
			if sc.stamp[id] == sc.gen {
				continue
			}
			sc.stamp[id] = sc.gen
			out = append(out, id)
		}
	}
	// Results must come back ascending (pool insertion order). When the
	// probe touched a large fraction of the id space an in-order sweep of
	// the stamp array is cheaper than comparison sorting; otherwise sort.
	if len(out)*8 >= len(sc.stamp) {
		out = out[:0]
		for id, g := range sc.stamp {
			if g == sc.gen {
				out = append(out, int32(id))
			}
		}
	} else {
		slices.Sort(out)
	}
	ix.scratches.Put(sc)
	return out
}

// ProbeBatch probes many queries across up to workers goroutines. The index
// must not be mutated concurrently; probes themselves are read-only.
// selves[i] is excluded from result i the way Probe excludes self.
func (ix *Index) ProbeBatch(sigs []*fingerprint.Signature, selves []int32, workers int) [][]int32 {
	if len(sigs) != len(selves) {
		panic("lsh: ProbeBatch length mismatch")
	}
	out := make([][]int32, len(sigs))
	n := len(sigs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range sigs {
			out[i] = ix.Probe(sigs[i], selves[i])
		}
		return out
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				out[i] = ix.Probe(sigs[i], selves[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Stats summarizes the index occupancy (experiment reporting).
type Stats struct {
	// Members is the number of indexed functions.
	Members int
	// Buckets is the number of non-empty buckets across all bands.
	Buckets int
	// MaxBucket is the largest single bucket.
	MaxBucket int
}

// ComputeStats walks the buckets and summarizes them.
func (ix *Index) ComputeStats() Stats {
	st := Stats{Members: len(ix.keys)}
	for _, band := range ix.buckets {
		st.Buckets += len(band)
		for _, b := range band {
			if len(b) > st.MaxBucket {
				st.MaxBucket = len(b)
			}
		}
	}
	return st
}
