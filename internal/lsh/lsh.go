// Package lsh implements a banded MinHash index over function signatures
// (fingerprint.Signature): the classic locality-sensitive-hashing scheme for
// Jaccard similarity. The signature's lanes are split into Bands bands of
// Rows consecutive lanes each; two members land in the same bucket of a band
// exactly when all Rows lanes of that band agree, which happens with
// probability J^Rows for weighted Jaccard J. Probing returns every member
// sharing at least one band bucket — probability 1-(1-J^Rows)^Bands — so
// similar pairs are found near-certainly while dissimilar pairs are almost
// never touched, replacing the quadratic all-pairs scan of the exact ranking
// with per-bucket work.
//
// The index is deliberately deterministic — and, since the warm-session
// work, content-addressed: members are integer ids (the exploration pool
// assigns pool-insertion indices, sessions assign stable per-name ids),
// buckets hold their ids sorted ascending, and probe results are returned
// sorted ascending. Sorted buckets make the index state a pure function of
// the live (id, signature) set: Remove followed by Insert of the same id and
// signature restores the exact pre-removal state, which is what lets a merge
// session roll back a run's retire/admit churn and what makes incremental
// evict/reinsert equivalent to a rebuild. Inserts and removals keep the
// index consistent as merges retire pool functions and add merged ones.
//
// The index itself is not safe for concurrent mutation; ProbeBatch performs
// read-only probes for many queries across a bounded worker pool.
package lsh

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"fmsa/internal/fingerprint"
)

// Params configures the banding: Bands bands of Rows consecutive signature
// lanes. Bands×Rows must not exceed fingerprint.SigLanes; the zero value
// selects DefaultParams.
type Params struct {
	Bands, Rows int
}

// DefaultParams returns the banding used when Params is zero: 21 bands of 6
// rows over the 128-lane signature. The collision s-curve crosses one half
// near J ≈ 0.57 while the dissimilar tail stays dark (P ≈ 0.1% at J = 0.2),
// and top-ranked candidate pairs — clone families with high shingle overlap —
// are recalled near-certainly. Measured on the largest synthetic corpus this
// banding probes under a quarter of the pairs the exact scan visits for ≈99%
// top-1 recall; flatter bandings (more bands, fewer rows) push recall
// marginally higher but probe several times more of the pool.
func DefaultParams() Params { return Params{Bands: 21, Rows: 6} }

// normalized resolves the zero value and validates the banding.
func (p Params) normalized() Params {
	if p.Bands == 0 && p.Rows == 0 {
		return DefaultParams()
	}
	if p.Bands <= 0 || p.Rows <= 0 || p.Bands*p.Rows > fingerprint.SigLanes {
		panic(fmt.Sprintf("lsh: invalid banding %d×%d over %d lanes", p.Bands, p.Rows, fingerprint.SigLanes))
	}
	return p
}

// bandKey condenses one band's rows into a bucket key.
func bandKey(sig *fingerprint.Signature, band, rows int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, lane := range sig[band*rows : (band+1)*rows] {
		h = (h ^ lane) * prime
	}
	return h
}

// Collide reports whether two signatures share at least one band — the
// bucket-mate relation Probe realizes, computed directly from the signatures
// without touching an index. The exploration cache uses it to decide whether
// a newly merged function would be probed by a pending ranking.
func Collide(a, b *fingerprint.Signature, p Params) bool {
	p = p.normalized()
	for band := 0; band < p.Bands; band++ {
		match := true
		for r := 0; r < p.Rows; r++ {
			if a[band*p.Rows+r] != b[band*p.Rows+r] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Index is the banded MinHash index.
type Index struct {
	p Params
	// buckets[band] maps a band key to member ids sorted ascending.
	buckets []map[uint64][]int32
	// keys remembers each member's band keys for removal.
	keys map[int32][]uint64
	// scratches pools per-probe dedup state so concurrent ProbeBatch
	// goroutines never share one.
	scratches sync.Pool
}

// probeScratch deduplicates one probe's bucket members without a map: ids are
// dense pool indices, so an id is visited iff stamp[id] holds the current
// generation. Bumping gen invalidates the whole array in O(1).
type probeScratch struct {
	stamp []uint32
	gen   uint32
}

// New returns an empty index with the given banding.
func New(p Params) *Index {
	p = p.normalized()
	ix := &Index{p: p, buckets: make([]map[uint64][]int32, p.Bands), keys: map[int32][]uint64{}}
	for i := range ix.buckets {
		ix.buckets[i] = map[uint64][]int32{}
	}
	ix.scratches.New = func() any { return &probeScratch{} }
	return ix
}

// Params returns the index's banding.
func (ix *Index) Params() Params { return ix.p }

// Len returns the number of members.
func (ix *Index) Len() int { return len(ix.keys) }

// Insert adds a member at its sorted bucket positions. Ids must be unique
// among live members; a removed id may be re-inserted, and re-inserting it
// with its original signature restores the exact pre-removal bucket state.
func (ix *Index) Insert(id int32, sig *fingerprint.Signature) {
	if _, dup := ix.keys[id]; dup {
		panic(fmt.Sprintf("lsh: duplicate insert of id %d", id))
	}
	keys := make([]uint64, ix.p.Bands)
	for band := 0; band < ix.p.Bands; band++ {
		k := bandKey(sig, band, ix.p.Rows)
		keys[band] = k
		b := ix.buckets[band][k]
		pos := len(b)
		for pos > 0 && b[pos-1] > id {
			pos--
		}
		b = append(b, 0)
		copy(b[pos+1:], b[pos:])
		b[pos] = id
		ix.buckets[band][k] = b
	}
	ix.keys[id] = keys
}

// Remove deletes a member; unknown ids are a no-op. Bucket order of the
// remaining members is preserved (still sorted ascending).
func (ix *Index) Remove(id int32) {
	keys, ok := ix.keys[id]
	if !ok {
		return
	}
	delete(ix.keys, id)
	for band, k := range keys {
		b := ix.buckets[band][k]
		for i, m := range b {
			if m == id {
				b = append(b[:i], b[i+1:]...)
				break
			}
		}
		if len(b) == 0 {
			delete(ix.buckets[band], k)
		} else {
			ix.buckets[band][k] = b
		}
	}
}

// Members returns the live member ids sorted ascending.
func (ix *Index) Members() []int32 {
	out := make([]int32, 0, len(ix.keys))
	for id := range ix.keys {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Probe returns the ids of every member sharing at least one band bucket
// with sig, excluding self, deduplicated and sorted ascending (pool
// insertion order — the deterministic tie-break order of the ranking).
func (ix *Index) Probe(sig *fingerprint.Signature, self int32) []int32 {
	sc := ix.scratches.Get().(*probeScratch)
	sc.gen++
	if sc.gen == 0 { // generation wrapped: the stale stamps are ambiguous
		clear(sc.stamp)
		sc.gen = 1
	}
	var out []int32
	for band := 0; band < ix.p.Bands; band++ {
		for _, id := range ix.buckets[band][bandKey(sig, band, ix.p.Rows)] {
			if id == self {
				continue
			}
			if int(id) >= len(sc.stamp) {
				grown := make([]uint32, int(id)+1)
				copy(grown, sc.stamp)
				sc.stamp = grown
			}
			if sc.stamp[id] == sc.gen {
				continue
			}
			sc.stamp[id] = sc.gen
			out = append(out, id)
		}
	}
	// Results must come back ascending (pool insertion order). When the
	// probe touched a large fraction of the id space an in-order sweep of
	// the stamp array is cheaper than comparison sorting; otherwise sort.
	if len(out)*8 >= len(sc.stamp) {
		out = out[:0]
		for id, g := range sc.stamp {
			if g == sc.gen {
				out = append(out, int32(id))
			}
		}
	} else {
		slices.Sort(out)
	}
	ix.scratches.Put(sc)
	return out
}

// ProbeBatch probes many queries across up to workers goroutines. The index
// must not be mutated concurrently; probes themselves are read-only.
// selves[i] is excluded from result i the way Probe excludes self.
func (ix *Index) ProbeBatch(sigs []*fingerprint.Signature, selves []int32, workers int) [][]int32 {
	if len(sigs) != len(selves) {
		panic("lsh: ProbeBatch length mismatch")
	}
	out := make([][]int32, len(sigs))
	n := len(sigs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range sigs {
			out[i] = ix.Probe(sigs[i], selves[i])
		}
		return out
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				out[i] = ix.Probe(sigs[i], selves[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Stats summarizes the index occupancy (experiment reporting).
type Stats struct {
	// Members is the number of indexed functions.
	Members int
	// Buckets is the number of non-empty buckets across all bands.
	Buckets int
	// MaxBucket is the largest single bucket.
	MaxBucket int
}

// ComputeStats walks the buckets and summarizes them.
func (ix *Index) ComputeStats() Stats {
	st := Stats{Members: len(ix.keys)}
	for _, band := range ix.buckets {
		st.Buckets += len(band)
		for _, b := range band {
			if len(b) > st.MaxBucket {
				st.MaxBucket = len(b)
			}
		}
	}
	return st
}
