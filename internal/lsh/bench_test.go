package lsh

import (
	"testing"

	"fmsa/internal/fingerprint"
)

// syntheticSigs builds n deterministic signatures without IR generation so the
// benchmark measures index construction, not fingerprinting.
func syntheticSigs(n int) []*fingerprint.Signature {
	sigs := make([]*fingerprint.Signature, n)
	for i := range sigs {
		var s fingerprint.Signature
		x := uint64(i)*0x9e3779b97f4a7c15 + 1
		for l := range s {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			s[l] = x
		}
		sigs[i] = &s
	}
	return sigs
}

// BenchmarkLSHRehydrate measures rebuilding an index from n known members —
// the simdb segment-rehydration path — with pre-sized band maps (NewSized)
// vs the unhinted constructor.
func BenchmarkLSHRehydrate(b *testing.B) {
	const n = 4096
	sigs := syntheticSigs(n)
	b.Run("sized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix := NewSized(Params{}, n)
			for id, s := range sigs {
				ix.Insert(int32(id), s)
			}
		}
	})
	b.Run("unsized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix := New(Params{})
			for id, s := range sigs {
				ix.Insert(int32(id), s)
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewFromSignatures(Params{}, sigs)
		}
	})
	keys := make([][]uint64, n)
	for id, s := range sigs {
		keys[id] = AppendBandKeys(Params{}, s, nil)
	}
	b.Run("keyed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewFromBandKeys(Params{}, keys)
		}
	})
}

// TestNewSizedMatchesNew pins that pre-sizing is invisible to index state.
func TestNewSizedMatchesNew(t *testing.T) {
	sigs := syntheticSigs(64)
	a, b := New(Params{}), NewSized(Params{}, len(sigs))
	for id, s := range sigs {
		a.Insert(int32(id), s)
		b.Insert(int32(id), s)
	}
	for id, s := range sigs {
		ra := a.Probe(s, int32(id))
		rb := b.Probe(s, int32(id))
		if len(ra) != len(rb) {
			t.Fatalf("probe %d: sized and unsized disagree (%d vs %d results)", id, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("probe %d: result %d differs: %d vs %d", id, i, ra[i], rb[i])
			}
		}
	}
}

// TestNewFromSignaturesMatchesInserts pins that bulk construction produces the
// same index state as an ascending Insert loop — including nil gaps (unsigned
// records) — and that the bulk-built index still mutates correctly afterwards
// (Remove must find every band bucket, Insert must not collide with arenas).
func TestNewFromSignaturesMatchesInserts(t *testing.T) {
	sigs := syntheticSigs(97)
	sigs[3], sigs[40], sigs[96] = nil, nil, nil // unsigned gaps
	want := New(Params{})
	for id, s := range sigs {
		if s != nil {
			want.Insert(int32(id), s)
		}
	}
	got := NewFromSignatures(Params{}, sigs)
	check := func(stage string) {
		t.Helper()
		if got.Len() != want.Len() {
			t.Fatalf("%s: Len %d != %d", stage, got.Len(), want.Len())
		}
		for id, s := range sigs {
			if s == nil {
				continue
			}
			rg := got.Probe(s, int32(id))
			rw := want.Probe(s, int32(id))
			if len(rg) != len(rw) {
				t.Fatalf("%s: probe %d: %d vs %d results", stage, id, len(rg), len(rw))
			}
			for i := range rg {
				if rg[i] != rw[i] {
					t.Fatalf("%s: probe %d: result %d differs: %d vs %d", stage, id, i, rg[i], rw[i])
				}
			}
		}
	}
	check("bulk")
	// Mutate both the same way: churn some members, re-add one.
	for _, id := range []int32{0, 17, 95} {
		got.Remove(id)
		want.Remove(id)
	}
	got.Insert(17, sigs[17])
	want.Insert(17, sigs[17])
	sigs[0], sigs[95] = nil, nil
	check("after churn")
}

// TestNewFromBandKeysMatchesInserts pins that the keyed bulk builder — fed
// AppendBandKeys output — matches both an Insert loop over the signatures and
// an InsertKeyed loop over the same keys, and keeps mutating correctly.
func TestNewFromBandKeysMatchesInserts(t *testing.T) {
	sigs := syntheticSigs(83)
	sigs[0], sigs[51] = nil, nil // unsigned gaps
	keys := make([][]uint64, len(sigs))
	for id, s := range sigs {
		if s != nil {
			keys[id] = AppendBandKeys(Params{}, s, nil)
		}
	}
	want := New(Params{})
	keyed := New(Params{})
	for id, s := range sigs {
		if s != nil {
			want.Insert(int32(id), s)
			keyed.InsertKeyed(int32(id), keys[id])
		}
	}
	got := NewFromBandKeys(Params{}, keys)
	check := func(stage string, ix *Index) {
		t.Helper()
		if got.Len() != ix.Len() {
			t.Fatalf("%s: Len %d != %d", stage, got.Len(), ix.Len())
		}
		for id, s := range sigs {
			if s == nil {
				continue
			}
			rg := got.Probe(s, int32(id))
			rw := ix.Probe(s, int32(id))
			if len(rg) != len(rw) {
				t.Fatalf("%s: probe %d: %d vs %d results", stage, id, len(rg), len(rw))
			}
			for i := range rg {
				if rg[i] != rw[i] {
					t.Fatalf("%s: probe %d: result %d differs: %d vs %d", stage, id, i, rg[i], rw[i])
				}
			}
		}
	}
	check("vs insert", want)
	check("vs insert-keyed", keyed)
	// Bulk-built indexes must keep mutating correctly: remove members, re-add
	// one by signature, and stay in lockstep with the Insert-built index.
	for _, id := range []int32{2, 51, 82} {
		got.Remove(id)
		want.Remove(id)
	}
	got.Insert(82, sigs[82])
	want.Insert(82, sigs[82])
	sigs[2] = nil
	check("after churn", want)
}
