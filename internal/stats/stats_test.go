package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean of empty must be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Errorf("GeoMean = %v, want 2", GeoMean([]float64{1, 4}))
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean of empty must be 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Error("Min/Max wrong")
	}
	if !almost(Median(xs), 4) {
		t.Errorf("Median = %v, want 4", Median(xs))
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median wrong")
	}
}

func TestCDF(t *testing.T) {
	// Fig. 8-like data: 89% at rank 1, the rest spread.
	positions := []int{1, 1, 1, 1, 1, 1, 1, 1, 2, 5}
	cdf := CDF(positions, 10)
	if len(cdf) != 10 {
		t.Fatalf("CDF length = %d, want 10", len(cdf))
	}
	if !almost(cdf[0], 80) {
		t.Errorf("coverage at rank 1 = %v, want 80", cdf[0])
	}
	if !almost(cdf[1], 90) {
		t.Errorf("coverage at rank 2 = %v, want 90", cdf[1])
	}
	if !almost(cdf[4], 100) || !almost(cdf[9], 100) {
		t.Error("coverage must reach 100 at rank 5")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		positions := make([]int, len(raw))
		for i, r := range raw {
			positions[i] = int(r%12) + 1 // some exceed maxPos
		}
		cdf := CDF(positions, 10)
		prev := 0.0
		for _, v := range cdf {
			if v < prev || v > 100.0000001 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFEmpty(t *testing.T) {
	cdf := CDF(nil, 5)
	for _, v := range cdf {
		if v != 0 {
			t.Error("empty CDF must be all zeros")
		}
	}
}
