// Package stats provides the small statistical helpers used by the
// experiment harness: means, geometric means and the cumulative
// distribution of rank positions (Fig. 8).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must all be positive
// (0 for empty input).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min and Max return the extrema of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CDF computes the cumulative coverage of integer rank positions up to
// maxPos: out[i] is the fraction (in percent) of values ≤ i+1. Values above
// maxPos are counted in the total but never covered (Fig. 8's x-axis is the
// top-10 rank).
func CDF(positions []int, maxPos int) []float64 {
	out := make([]float64, maxPos)
	if len(positions) == 0 {
		return out
	}
	counts := make([]int, maxPos+1)
	for _, p := range positions {
		if p >= 1 && p <= maxPos {
			counts[p]++
		}
	}
	cum := 0
	for i := 1; i <= maxPos; i++ {
		cum += counts[i]
		out[i-1] = 100 * float64(cum) / float64(len(positions))
	}
	return out
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
