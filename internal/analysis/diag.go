package analysis

import (
	"fmt"
	"strings"

	"fmsa/internal/ir"
)

// Code is a stable merge-audit diagnostic code. Codes are part of the tool
// surface (tests, CI gates and bench counters match on them); add new codes
// at the end and never renumber.
type Code string

// Audit diagnostic codes.
const (
	// CodeUninitLoad (FM001): a load of a demoted alloca slot may observe
	// the slot's uninitialized definition on a path consistent with the
	// variant being executed, and the loaded value is observable under
	// that variant.
	CodeUninitLoad Code = "FM001"
	// CodeUnreachable (FM002): a block of the merged function is
	// unreachable from the entry — dead weight the cost model still
	// counts, and the symptom of a dropped discriminator branch.
	CodeUnreachable Code = "FM002"
	// CodeBadDiscriminator (FM003): the function-id discriminator is
	// malformed — missing, not i1, unused despite being declared, or used
	// as a data operand instead of a branch/select condition.
	CodeBadDiscriminator Code = "FM003"
	// CodeLostReturnPath (FM004): an original function could return, but
	// under its func_id value no exit (ret/resume) is reachable in the
	// merged body — that variant's return paths did not survive the merge.
	CodeLostReturnPath Code = "FM004"
	// CodeDeadParam (FM005): a merged parameter is never used although the
	// original parameter(s) mapped onto it were — the merge silently
	// dropped an input.
	CodeDeadParam Code = "FM005"
	// CodeDegenerateBranch (FM006): every branch and select conditioned on
	// the discriminator has identical arms, so it no longer selects a
	// variant although HasFuncID promises the variants differ. (A single
	// identical-arm branch is legitimate: both variants' targets can merge
	// into one block.)
	CodeDegenerateBranch Code = "FM006"
)

// Diagnostic is one audit finding, locatable to a function and, when
// applicable, a block and instruction.
type Diagnostic struct {
	// Code is the stable diagnostic code.
	Code Code
	// Fn is the name of the audited (merged) function.
	Fn string
	// Block is the enclosing block's label, "" when not block-specific.
	Block string
	// Inst is the offending instruction's textual form, "" when not
	// instruction-specific.
	Inst string
	// Msg describes the finding.
	Msg string
}

// String renders the diagnostic as one line:
//
//	FM001 @f.a.b %bb3: load of %slot may read uninitialized memory (load i64, i64* %slot)
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s @%s", d.Code, d.Fn)
	if d.Block != "" {
		fmt.Fprintf(&sb, " %%%s", d.Block)
	}
	fmt.Fprintf(&sb, ": %s", d.Msg)
	if d.Inst != "" {
		fmt.Fprintf(&sb, " (%s)", d.Inst)
	}
	return sb.String()
}

// FormatDiagnostics renders diagnostics one per line.
func FormatDiagnostics(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// VerifyDiagnostics runs the staged IR verifier over the module and adapts
// its findings to the audit Diagnostic shape, so tools that already render
// FM codes surface FV codes through the same channel. The two code spaces
// are disjoint by construction (FMxxx audits merges, FVxxx verifies IR).
func VerifyDiagnostics(m *ir.Module, level ir.VerifyLevel) []Diagnostic {
	vds := ir.VerifyModuleLevel(m, level)
	if len(vds) == 0 {
		return nil
	}
	diags := make([]Diagnostic, len(vds))
	for i, d := range vds {
		diags[i] = Diagnostic{
			Code:  Code(d.Code),
			Fn:    d.Fn,
			Block: d.Block,
			Inst:  d.Inst,
			Msg:   d.Msg,
		}
	}
	return diags
}

// blockName returns a printable label for diagnostics.
func blockName(b *ir.Block) string {
	if b == nil {
		return ""
	}
	if b.Name() == "" {
		return "<anon>"
	}
	return b.Name()
}
