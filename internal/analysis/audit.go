package analysis

import (
	"fmt"
	"strings"

	"fmsa/internal/ir"
)

// MergeAudit describes one merged function to audit. Merged is required;
// the originals and parameter maps sharpen the checks when present (the
// explorer audits before Commit, while the original bodies are intact).
type MergeAudit struct {
	// Merged is the generated function (committed or about to be).
	Merged *ir.Func
	// F1 and F2 are the pre-merge originals identified by func_id true and
	// false respectively. Optional; nil originals are assumed to return.
	F1, F2 *ir.Func
	// HasFuncID reports whether Merged takes the function-id discriminator
	// in parameter slot 0.
	HasFuncID bool
	// ParamMap1 and ParamMap2 map original parameter indices to merged
	// slots (see core.Result). Optional; without them every unused
	// non-discriminator parameter is flagged.
	ParamMap1, ParamMap2 []int
}

// AuditMerge statically checks a merged function for the soundness
// properties the merge transform must preserve:
//
//   - the discriminator parameter is well-formed and only ever selects
//     variants (FM003, FM006);
//   - each original's return paths survive under its func_id value (FM004);
//   - no demoted alloca slot is read before being stored on a
//     variant-consistent path with the value observable (FM001);
//   - no block is unreachable (FM002) and no mapped parameter went dead
//     (FM005).
//
// The checks are per-variant: branches conditioned on a discriminator are
// followed one-sided (enumerating assignments of every stacked
// discriminator an iterated merge accumulates), so facts that only hold on
// paths another variant takes (e.g. a demoted slot read whose value feeds a
// discarded select arm) do not produce false alarms. A clean merge yields
// no diagnostics.
func AuditMerge(a MergeAudit) []Diagnostic {
	f := a.Merged
	if f == nil || f.IsDecl() {
		return nil
	}
	au := &auditor{a: a, fn: f}
	if a.HasFuncID {
		au.checkDiscriminator()
	}
	au.checkUnreachable()
	au.checkReturnPaths()
	au.checkUninitLoads()
	au.checkDeadParams()
	return au.diags
}

type auditor struct {
	a      MergeAudit
	fn     *ir.Func
	funcID *ir.Param // nil when the merge dropped the discriminator
	diags  []Diagnostic
}

func (au *auditor) report(code Code, b *ir.Block, in *ir.Inst, format string, args ...any) {
	d := Diagnostic{
		Code:  code,
		Fn:    au.fn.Name(),
		Block: blockName(b),
		Msg:   fmt.Sprintf(format, args...),
	}
	if in != nil {
		d.Inst = ir.FormatInst(in)
	}
	au.diags = append(au.diags, d)
}

// checkDiscriminator validates the func_id parameter: present, i1, used,
// and only ever used as a branch or select condition (FM003). Individual
// conditioned branches with identical arms are legitimate — both variants'
// targets can merge into one block — but if NO use distinguishes its arms
// the discriminator selects nothing while HasFuncID promises the variants
// differ (FM006).
func (au *auditor) checkDiscriminator() {
	if len(au.fn.Params) == 0 {
		au.report(CodeBadDiscriminator, nil, nil, "HasFuncID set but the function has no parameters")
		return
	}
	p := au.fn.Params[0]
	if !p.Type().IsBool() {
		au.report(CodeBadDiscriminator, nil, nil, "discriminator %s has type %s, want i1", p.Ident(), p.Type())
		return
	}
	au.funcID = p
	uses := p.Uses()
	if len(uses) == 0 {
		au.report(CodeBadDiscriminator, nil, nil, "discriminator %s is declared but never used; identical functions should merge without it", p.Ident())
		return
	}
	effective := 0
	for _, u := range uses {
		in := u.User
		cond := (in.Op == ir.OpBr && in.NumOperands() == 3 && u.Index == 0) ||
			(in.Op == ir.OpSelect && u.Index == 0)
		if !cond {
			au.report(CodeBadDiscriminator, in.Parent(), in,
				"discriminator %s used as a data operand (operand %d)", p.Ident(), u.Index)
			effective++ // malformed, but not FM006's concern
			continue
		}
		if in.Operand(1) != in.Operand(2) && !ir.ConstantsEqual(in.Operand(1), in.Operand(2)) {
			effective++
		}
	}
	if effective > 0 {
		return
	}
	// A fully degenerate discriminator is legitimate when the variant
	// distinction is carried by a stacked discriminator from an earlier
	// merge, or when the originals' differences normalized away entirely
	// (label-only divergence whose dispatch arms collapsed). Flag it only
	// when neither escape applies: no other discriminator-like parameter
	// exists and the originals provably compute different operations.
	for _, d := range discriminators(au.fn) {
		if d != p {
			return
		}
	}
	if opcodesDiffer(au.a.F1, au.a.F2) {
		au.report(CodeDegenerateBranch, nil, nil,
			"every use of discriminator %s has identical arms; it no longer selects a variant", p.Ident())
	}
}

// opcodesDiffer reports whether the two originals have provably different
// opcode multisets — a cheap witness that their computations differ, so a
// variant-independent merged body cannot implement both. Branches are
// ignored: block structure is exactly what merging normalizes away (a
// single-br block threaded by SimplifyCFG leaves the computation intact).
func opcodesDiffer(f1, f2 *ir.Func) bool {
	if f1 == nil || f2 == nil || f1.IsDecl() || f2.IsDecl() {
		return false
	}
	counts := map[ir.Opcode]int{}
	tally := func(d int) func(*ir.Inst) {
		return func(in *ir.Inst) {
			if in.Op != ir.OpBr {
				counts[in.Op] += d
			}
		}
	}
	f1.Insts(tally(1))
	f2.Insts(tally(-1))
	for _, n := range counts {
		if n != 0 {
			return true
		}
	}
	return false
}

// variantView restricts the CFG to the paths variant id can execute:
// conditional branches on the discriminator follow only the corresponding
// arm. With no discriminator the full graph is returned.
func (au *auditor) variantView(id bool) View {
	funcID := au.funcID
	if funcID == nil {
		return View{}
	}
	return View{Succs: func(b *ir.Block) []*ir.Block {
		t := b.Terminator()
		if t != nil && t.Op == ir.OpBr && t.NumOperands() == 3 && t.Operand(0) == ir.Value(funcID) {
			if id {
				return []*ir.Block{t.Operand(1).(*ir.Block)}
			}
			return []*ir.Block{t.Operand(2).(*ir.Block)}
		}
		return b.Successors()
	}}
}

// checkUnreachable flags blocks no path from the entry reaches (FM002).
func (au *auditor) checkUnreachable() {
	for _, b := range UnreachableBlocks(au.fn) {
		au.report(CodeUnreachable, b, nil, "block is unreachable from the entry")
	}
}

// checkReturnPaths verifies each original's ability to return survived
// under its func_id value (FM004).
func (au *auditor) checkReturnPaths() {
	variants := []struct {
		id   bool
		orig *ir.Func
	}{{true, au.a.F1}, {false, au.a.F2}}
	for _, v := range variants {
		if v.orig != nil && !hasExit(v.orig, View{}) {
			continue // the original never returned either
		}
		if !hasExit(au.fn, au.variantView(v.id)) {
			au.report(CodeLostReturnPath, nil, nil,
				"no ret or resume reachable under func_id=%s; that variant's return paths were lost", fmtID(v.id))
		}
		if au.funcID == nil {
			return // one view covers both variants
		}
	}
}

// hasExit reports whether any block reachable under the view ends in an
// exit terminator (ret or resume).
func hasExit(f *ir.Func, view View) bool {
	if f.IsDecl() {
		return false
	}
	for b := range ReachableBlocks(f, view) {
		if t := b.Terminator(); t != nil && (t.Op == ir.OpRet || t.Op == ir.OpResume) {
			return true
		}
	}
	return false
}

// maxEnumeratedDiscs caps the discriminator assignments the uninit-load
// check enumerates (2^k views). Merge nesting rarely exceeds a handful of
// discriminators; beyond the cap the remaining ones stay unconstrained,
// which can only make the check more conservative, never unsound.
const maxEnumeratedDiscs = 6

// discriminators returns the i1 parameters of f used exclusively in
// condition logic: as branch or select conditions, or as the data arms of
// i1-typed selects (which themselves feed conditions). Iterated merges
// stack discriminators: merging two already-merged functions demotes their
// func_ids to ordinary parameters (%func_id.1, ...) — possibly shared into
// one slot or muxed through selects on the outer func_id — that still gate
// variant-specific paths. The merge invariants (uninit slot reads are
// discarded exactly on the paths that read them) only hold relative to a
// consistent assignment of ALL of them.
func discriminators(f *ir.Func) []*ir.Param {
	var out []*ir.Param
	for _, p := range f.Params {
		if !p.Type().IsBool() || p.NumUses() == 0 {
			continue
		}
		ok := true
		for _, u := range p.Uses() {
			switch {
			case u.User.Op == ir.OpBr && u.User.NumOperands() == 3 && u.Index == 0:
			case u.User.Op == ir.OpSelect && u.Index == 0:
			case u.User.Op == ir.OpSelect && u.User.Type().IsBool():
				// i1 select arm: the muxed value flows into conditions.
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

// assignment fixes each enumerated discriminator to a boolean.
type assignment map[*ir.Param]bool

func makeAssignment(discs []*ir.Param, bits uint) assignment {
	a := make(assignment, len(discs))
	for i, d := range discs {
		a[d] = bits&(1<<i) != 0
	}
	return a
}

// boolVal constant-folds an i1 value under the assignment: assigned
// parameters, boolean constants, and select chains over them. The second
// result reports whether the value is determined.
func (a assignment) boolVal(v ir.Value, depth int) (bool, bool) {
	switch x := v.(type) {
	case *ir.ConstInt:
		if x.Type().IsBool() {
			return x.V != 0, true
		}
	case *ir.Param:
		b, ok := a[x]
		return b, ok
	case *ir.Inst:
		if x.Op != ir.OpSelect || depth <= 0 {
			break
		}
		if c, ok := a.boolVal(x.Operand(0), depth-1); ok {
			if c {
				return a.boolVal(x.Operand(1), depth-1)
			}
			return a.boolVal(x.Operand(2), depth-1)
		}
		// Unknown condition, but both arms may still agree.
		if t, ok := a.boolVal(x.Operand(1), depth-1); ok {
			if f, ok2 := a.boolVal(x.Operand(2), depth-1); ok2 && t == f {
				return t, true
			}
		}
	}
	return false, false
}

// maxFoldDepth bounds select-chain folding; merge nesting adds one select
// layer per level, so a small constant covers realistic depths.
const maxFoldDepth = 8

// view restricts the CFG to the paths consistent with the assignment: a
// conditional branch whose condition folds to a constant under it follows
// only that arm. Branches on anything undetermined stay two-sided.
func (a assignment) view() View {
	if len(a) == 0 {
		return View{}
	}
	return View{Succs: func(b *ir.Block) []*ir.Block {
		t := b.Terminator()
		if t != nil && t.Op == ir.OpBr && t.NumOperands() == 3 {
			if c, ok := a.boolVal(t.Operand(0), maxFoldDepth); ok {
				if c {
					return []*ir.Block{t.Operand(1).(*ir.Block)}
				}
				return []*ir.Block{t.Operand(2).(*ir.Block)}
			}
		}
		return b.Successors()
	}}
}

// checkUninitLoads runs load-before-store per discriminator assignment
// (FM001). A flagged load is benign for an assignment when its value cannot
// be observed under it: every use is either in a block the assignment never
// reaches or the discarded arm of a select on an assigned discriminator.
// φ-demotion plus merging makes such benign reads routine — the slot of a
// value defined only in one variant's region is read in shared code but
// discarded by func_id — so the filtering, not the dataflow, is what makes
// the check precise.
func (au *auditor) checkUninitLoads() {
	discs := discriminators(au.fn)
	if len(discs) > maxEnumeratedDiscs {
		discs = discs[:maxEnumeratedDiscs]
	}
	seen := map[*ir.Inst]bool{}
	for bits := uint(0); bits < 1<<len(discs); bits++ {
		asg := makeAssignment(discs, bits)
		view := asg.view()
		rs := ComputeReachingStores(au.fn, view)
		loads := rs.UninitLoads()
		if len(loads) == 0 {
			continue
		}
		reach := ReachableBlocks(au.fn, view)
		for _, ul := range loads {
			if seen[ul.Load] || benignUnder(ul.Load, asg, reach) {
				continue
			}
			seen[ul.Load] = true
			au.report(CodeUninitLoad, ul.Load.Parent(), ul.Load,
				"load of slot %s may read uninitialized memory under %s", ul.Slot.Ident(), fmtAssign(discs, bits))
		}
	}
}

// benignUnder reports whether the value of load cannot be observed when the
// discriminator assignment executes.
func benignUnder(load *ir.Inst, asg assignment, reach map[*ir.Block]bool) bool {
	return !observed(load, asg, reach, maxObsDepth)
}

// maxObsDepth bounds the transitive dead-use walk; each merge level adds at
// most a couple of select/arithmetic hops, so modest depth suffices.
const maxObsDepth = 16

// observed reports whether v's value can be consumed under the assignment.
// A use does not observe v when its user is unreachable under the
// assignment, discards exactly v's arm of a select, or is itself a pure
// instruction whose own value is unobserved (removable dead code on this
// path) — the select-mux idiom of iterated merges routinely produces chains
// like select(outer, select(inner, a, b), c) where only the transitive view
// shows a to be dead.
func observed(v *ir.Inst, asg assignment, reach map[*ir.Block]bool, depth int) bool {
	for _, u := range v.Uses() {
		user := u.User
		if user.Parent() == nil || !reach[user.Parent()] {
			continue // user only executes under other assignments
		}
		if user.Op == ir.OpSelect && discardedArm(user, asg) == u.Index {
			continue // select arm the assignment throws away
		}
		if depth > 0 && !user.Op.HasSideEffects() && user.Op != ir.OpPhi &&
			!observed(user, asg, reach, depth-1) {
			continue // feeds only dead pure code under this assignment
		}
		return true
	}
	return false
}

// discardedArm returns the operand index sel discards when its condition
// folds to a constant under the assignment, or 0 when it is undetermined
// (operand 0 is the condition, never an arm).
func discardedArm(sel *ir.Inst, asg assignment) int {
	c, ok := asg.boolVal(sel.Operand(0), maxFoldDepth)
	if !ok {
		return 0
	}
	if c {
		return 2 // true selects operand 1, discards 2
	}
	return 1
}

// fmtAssign renders a discriminator assignment for diagnostics, e.g.
// "func_id=1" or "func_id=0, func_id.1=1".
func fmtAssign(discs []*ir.Param, bits uint) string {
	if len(discs) == 0 {
		return "all paths"
	}
	var sb strings.Builder
	for i, d := range discs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", d.Ident(), fmtID(bits&(1<<i) != 0))
	}
	return sb.String()
}

// checkDeadParams flags merged parameters that lost their uses (FM005).
// With parameter maps, only slots fed by an original parameter that was
// itself used are flagged — an original's legitimately dead parameter stays
// dead in the merge without being an audit finding.
func (au *auditor) checkDeadParams() {
	start := 0
	if au.a.HasFuncID {
		start = 1 // slot 0 is the discriminator, checked separately
	}
	hasMaps := au.a.ParamMap1 != nil || au.a.ParamMap2 != nil
	for s := start; s < len(au.fn.Params); s++ {
		mp := au.fn.Params[s]
		if mp.NumUses() > 0 {
			continue
		}
		if !hasMaps {
			au.report(CodeDeadParam, nil, nil, "parameter %s (slot %d) is never used", mp.Ident(), s)
			continue
		}
		if src := au.usedSourceParam(s); src != "" {
			au.report(CodeDeadParam, nil, nil,
				"parameter %s (slot %d) is never used although original parameter %s was", mp.Ident(), s, src)
		}
	}
}

// usedSourceParam returns the identifier of an original parameter that maps
// to merged slot s and had uses in its original body, or "".
func (au *auditor) usedSourceParam(s int) string {
	check := func(f *ir.Func, pmap []int, tag string) string {
		if f == nil {
			return ""
		}
		for i, slot := range pmap {
			if slot == s && i < len(f.Params) && f.Params[i].NumUses() > 0 {
				return fmt.Sprintf("%s of @%s (%s)", f.Params[i].Ident(), f.Name(), tag)
			}
		}
		return ""
	}
	if src := check(au.a.F1, au.a.ParamMap1, "func_id=1"); src != "" {
		return src
	}
	return check(au.a.F2, au.a.ParamMap2, "func_id=0")
}

func fmtID(id bool) string {
	if id {
		return "1"
	}
	return "0"
}
