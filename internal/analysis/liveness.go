package analysis

import "fmsa/internal/ir"

// Liveness is per-block live-value information: which SSA values (parameters
// and instruction results) may still be read on some path from a program
// point. A classic backward union problem; gen is the upward-exposed uses of
// a block, kill its definitions.
type Liveness struct {
	// Values numbers every parameter and value-producing instruction of
	// the function; bit i of a set talks about Values[i].
	Values []ir.Value
	index  map[ir.Value]int
	phiOut map[*ir.Block][]int // value bits successor phis read on edges out of the block
	res    *Result
}

// livenessProblem adapts a function to the engine. Phi uses are attributed
// to the end of the incoming predecessor block (the value must be live on
// that edge, not at the phi's own block start).
type livenessProblem struct {
	l       *Liveness
	phiUses map[*ir.Block][]int // block -> value bits used by successor phis
}

func (p *livenessProblem) Direction() Direction { return Backward }
func (p *livenessProblem) Meet() Meet           { return Union }
func (p *livenessProblem) NumFacts() int        { return len(p.l.Values) }
func (p *livenessProblem) Boundary(set *BitSet) {}
func (p *livenessProblem) Transfer(b *ir.Block, out *BitSet) {
	panic("analysis: liveness uses GenKill")
}

func (p *livenessProblem) GenKill(b *ir.Block, gen, kill *BitSet) {
	// Phi-edge uses sit at the very end of the block, so in a backward walk
	// they come first: a value defined inside the block and read by a
	// successor phi must not end up upward-exposed.
	for _, bit := range p.phiUses[b] {
		gen.Set(bit)
	}
	// Walk backwards so a use before a redefinition in the same block is
	// upward-exposed but a use after one is not.
	for i := len(b.Insts) - 1; i >= 0; i-- {
		in := b.Insts[i]
		if bit, ok := p.l.index[ir.Value(in)]; ok {
			kill.Set(bit)
			gen.Clear(bit)
		}
		if in.Op == ir.OpPhi {
			continue // incoming values live at the predecessor, not here
		}
		for _, op := range in.Operands() {
			if bit, ok := p.l.index[op]; ok {
				gen.Set(bit)
			}
		}
	}
}

// ComputeLiveness solves liveness over the full CFG of f.
func ComputeLiveness(f *ir.Func) *Liveness {
	l := &Liveness{index: map[ir.Value]int{}}
	add := func(v ir.Value) {
		if _, ok := l.index[v]; ok {
			return
		}
		l.index[v] = len(l.Values)
		l.Values = append(l.Values, v)
	}
	for _, p := range f.Params {
		add(p)
	}
	f.Insts(func(in *ir.Inst) {
		if !in.Type().IsVoid() {
			add(in)
		}
	})

	prob := &livenessProblem{l: l, phiUses: map[*ir.Block][]int{}}
	f.Insts(func(in *ir.Inst) {
		if in.Op != ir.OpPhi {
			return
		}
		for i := 0; i < in.NumPhiIncoming(); i++ {
			v, pred := in.PhiIncoming(i)
			if bit, ok := l.index[v]; ok {
				prob.phiUses[pred] = append(prob.phiUses[pred], bit)
			}
		}
	})
	l.phiOut = prob.phiUses
	l.res = Solve(f, prob)
	return l
}

// LiveIn reports whether v may be read on some path starting at the
// beginning of b. Unreachable blocks report false.
func (l *Liveness) LiveIn(b *ir.Block, v ir.Value) bool {
	set := l.res.In(b)
	if set == nil {
		return false
	}
	bit, ok := l.index[v]
	return ok && set.Get(bit)
}

// LiveOut reports whether v may be read on some path leaving b. The meet
// over successor live-ins deliberately excludes phi incomings (a phi's
// operand for this edge is not live at the successor's start), so edge uses
// recorded per predecessor are unioned back in here.
func (l *Liveness) LiveOut(b *ir.Block, v ir.Value) bool {
	set := l.res.Out(b)
	if set == nil {
		return false
	}
	bit, ok := l.index[v]
	if !ok {
		return false
	}
	if set.Get(bit) {
		return true
	}
	for _, pb := range l.phiOut[b] {
		if pb == bit {
			return true
		}
	}
	return false
}

// LiveInSet returns the values live at the start of b.
func (l *Liveness) LiveInSet(b *ir.Block) []ir.Value {
	return l.values(l.res.In(b))
}

// LiveOutSet returns the values live at the end of b, including values read
// by successor phis on edges out of b.
func (l *Liveness) LiveOutSet(b *ir.Block) []ir.Value {
	set := l.res.Out(b)
	if set == nil {
		return nil
	}
	if phis := l.phiOut[b]; len(phis) > 0 {
		set = set.Clone()
		for _, bit := range phis {
			set.Set(bit)
		}
	}
	return l.values(set)
}

func (l *Liveness) values(set *BitSet) []ir.Value {
	if set == nil {
		return nil
	}
	var vs []ir.Value
	set.ForEach(func(i int) { vs = append(vs, l.Values[i]) })
	return vs
}

// DeadInsts returns value-producing, side-effect-free instructions whose
// results are never used — candidates the liveness analysis proves
// removable (the dynamic counterpart of passes.DCE's use-count test).
func DeadInsts(f *ir.Func) []*ir.Inst {
	var dead []*ir.Inst
	f.Insts(func(in *ir.Inst) {
		if in.Op.HasSideEffects() || in.IsTerminator() || in.Type().IsVoid() {
			return
		}
		if in.NumUses() == 0 {
			dead = append(dead, in)
		}
	})
	return dead
}
