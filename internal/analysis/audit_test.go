package analysis_test

import (
	"testing"

	"fmsa/internal/analysis"
	"fmsa/internal/core"
	"fmsa/internal/ir"
	"fmsa/internal/passes"
	"fmsa/internal/workload"
)

// divergentPairIR merges into a function with a func_id discriminator and at
// least one CondBr diamond (the mul/udiv mismatch becomes gap columns).
const divergentPairIR = `
define internal i64 @fa(i64 %x, i64 %y) {
entry:
  %a = add i64 %x, %y
  %b = mul i64 %a, 3
  %r = add i64 %b, 7
  ret i64 %r
}

define internal i64 @fb(i64 %x, i64 %y) {
entry:
  %a = add i64 %x, %y
  %b = udiv i64 %a, 3
  %r = add i64 %b, 7
  ret i64 %r
}

define i64 @ua(i64 %x) {
entry:
  %r = call i64 @fa(i64 %x, i64 2)
  ret i64 %r
}

define i64 @ub(i64 %x) {
entry:
  %r = call i64 @fb(i64 %x, i64 2)
  ret i64 %r
}
`

// mergePair merges two named functions without committing, so the originals
// stay intact for the audit (mirroring how the explorer audits candidates).
func mergePair(t *testing.T, src, f1, f2 string) *core.Result {
	t.Helper()
	m := ir.MustParseModule("audit", src)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("pre-verify: %v", err)
	}
	res, err := core.Merge(m.FuncByName(f1), m.FuncByName(f2), core.DefaultOptions())
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return res
}

func auditOf(res *core.Result) analysis.MergeAudit {
	return analysis.MergeAudit{
		Merged:    res.Merged,
		F1:        res.F1,
		F2:        res.F2,
		HasFuncID: res.HasFuncID,
		ParamMap1: res.ParamMap1,
		ParamMap2: res.ParamMap2,
	}
}

func codes(diags []analysis.Diagnostic) map[analysis.Code]int {
	m := map[analysis.Code]int{}
	for _, d := range diags {
		m[d.Code]++
	}
	return m
}

func TestAuditCleanMerges(t *testing.T) {
	for _, tc := range []struct{ name, f1, f2, src string }{
		{"divergent", "fa", "fb", divergentPairIR},
	} {
		res := mergePair(t, tc.src, tc.f1, tc.f2)
		if diags := analysis.AuditMerge(auditOf(res)); len(diags) != 0 {
			t.Errorf("%s: clean merge produced diagnostics:\n%s%s",
				tc.name, analysis.FormatDiagnostics(diags), ir.FormatFunc(res.Merged))
		}
	}
}

// findDiscBranch returns the first conditional branch on the discriminator.
func findDiscBranch(t *testing.T, res *core.Result) *ir.Inst {
	t.Helper()
	funcID := ir.Value(res.Merged.Params[0])
	var br *ir.Inst
	res.Merged.Insts(func(in *ir.Inst) {
		if br == nil && in.Op == ir.OpBr && in.NumOperands() == 3 && in.Operand(0) == funcID {
			br = in
		}
	})
	if br == nil {
		t.Fatalf("merged function has no discriminator branch:\n%s", ir.FormatFunc(res.Merged))
	}
	return br
}

func TestAuditDroppedDiscriminatorBranch(t *testing.T) {
	res := mergePair(t, divergentPairIR, "fa", "fb")
	if !res.HasFuncID {
		t.Fatal("expected a discriminated merge")
	}
	// Corrupt: rewrite the discriminator branch into an unconditional jump
	// to its true arm, as if control-flow surgery lost the split.
	br := findDiscBranch(t, res)
	blk := br.Parent()
	dest := br.Operand(1).(*ir.Block)
	br.RemoveFromParent()
	bd := ir.NewBuilder(blk)
	bd.Br(dest)

	got := codes(analysis.AuditMerge(auditOf(res)))
	// The false arm is severed: depending on layout that reads as an
	// unreachable block, a lost variant, or (if this was the only branch)
	// an unused discriminator. Any of the three must fire.
	if got[analysis.CodeUnreachable]+got[analysis.CodeLostReturnPath]+got[analysis.CodeBadDiscriminator] == 0 {
		t.Fatalf("dropped discriminator branch not detected; got %v", got)
	}
}

func TestAuditDegenerateBranch(t *testing.T) {
	res := mergePair(t, divergentPairIR, "fa", "fb")
	// Corrupt: collapse the arms of EVERY discriminator use. A single
	// identical-arm branch is legitimate (both variants' targets can merge
	// into one block), but when no use distinguishes the variants the
	// discriminator selects nothing.
	funcID := ir.Value(res.Merged.Params[0])
	for _, u := range res.Merged.Params[0].Uses() {
		in := u.User
		switch {
		case in.Op == ir.OpBr && in.NumOperands() == 3 && in.Operand(0) == funcID:
			in.SetOperand(2, in.Operand(1))
		case in.Op == ir.OpSelect && in.Operand(0) == funcID:
			in.SetOperand(2, in.Operand(1))
		}
	}
	got := codes(analysis.AuditMerge(auditOf(res)))
	if got[analysis.CodeDegenerateBranch] == 0 {
		t.Fatalf("fully degenerate discriminator not detected; got %v", got)
	}
}

func TestAuditDiscriminatorAsData(t *testing.T) {
	res := mergePair(t, divergentPairIR, "fa", "fb")
	// Corrupt: feed the discriminator into an arithmetic instruction.
	funcID := res.Merged.Params[0]
	entry := res.Merged.Entry()
	bad := ir.NewInst(ir.OpAdd, funcID.Type(), funcID, funcID)
	entry.InsertBefore(bad, entry.Terminator())
	got := codes(analysis.AuditMerge(auditOf(res)))
	if got[analysis.CodeBadDiscriminator] == 0 {
		t.Fatalf("discriminator data use not detected; got %v", got)
	}
}

// demotedPairIR exercises φ-demotion: DemotePhis rewrites the phi into an
// alloca slot with stores in the arms and a load at the join, and the merge
// keeps that shape. Deleting an arm's store then creates a variant-visible
// uninitialized read.
const demotedPairIR = `
define internal i64 @ga(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 5
  br i1 %c, label %t, label %f
t:
  %a = mul i64 %x, 2
  br label %done
f:
  %b = add i64 %x, 9
  br label %done
done:
  %r = phi i64 [ %a, %t ], [ %b, %f ]
  ret i64 %r
}

define internal i64 @gb(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 3
  br i1 %c, label %t, label %f
t:
  %a = mul i64 %x, 4
  br label %done
f:
  %b = add i64 %x, 1
  br label %done
done:
  %r = phi i64 [ %a, %t ], [ %b, %f ]
  ret i64 %r
}

define i64 @ha(i64 %x) {
entry:
  %r = call i64 @ga(i64 %x)
  ret i64 %r
}

define i64 @hb(i64 %x) {
entry:
  %r = call i64 @gb(i64 %x)
  ret i64 %r
}
`

func demotedMerge(t *testing.T) *core.Result {
	t.Helper()
	m := ir.MustParseModule("audit", demotedPairIR)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("pre-verify: %v", err)
	}
	passes.DemotePhisModule(m)
	res, err := core.Merge(m.FuncByName("ga"), m.FuncByName("gb"), core.DefaultOptions())
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return res
}

func TestAuditCleanDemotedMerge(t *testing.T) {
	res := demotedMerge(t)
	if diags := analysis.AuditMerge(auditOf(res)); len(diags) != 0 {
		t.Errorf("clean demoted merge produced diagnostics:\n%s%s",
			analysis.FormatDiagnostics(diags), ir.FormatFunc(res.Merged))
	}
}

func TestAuditUninitLoadAfterDroppedStore(t *testing.T) {
	res := demotedMerge(t)
	// Corrupt: delete one store to a demoted slot. The load at the join now
	// reads uninitialized memory on that arm, under both variants.
	slots := analysis.TrackedSlots(res.Merged)
	if len(slots) == 0 {
		t.Fatalf("no demoted slots in merged function:\n%s", ir.FormatFunc(res.Merged))
	}
	var dropped bool
	for _, slot := range slots {
		for _, u := range slot.Uses() {
			if u.User.Op == ir.OpStore && u.Index == 1 {
				u.User.RemoveFromParent()
				dropped = true
				break
			}
		}
		if dropped {
			break
		}
	}
	if !dropped {
		t.Fatal("found no store to a demoted slot")
	}
	got := codes(analysis.AuditMerge(auditOf(res)))
	if got[analysis.CodeUninitLoad] == 0 {
		t.Fatalf("uninitialized read not detected; got %v\n%s", got, ir.FormatFunc(res.Merged))
	}
}

func TestAuditStoreLoadReorder(t *testing.T) {
	res := demotedMerge(t)
	// Corrupt: hoist the join-block load of a demoted slot above everything
	// else in the function by moving it to the top of the entry block —
	// before any store. The classic demotion ordering violation.
	var load *ir.Inst
	res.Merged.Insts(func(in *ir.Inst) {
		if load != nil || in.Op != ir.OpLoad {
			return
		}
		if slot, ok := in.Operand(0).(*ir.Inst); ok && slot.Op == ir.OpAlloca {
			// Only a tracked slot load counts.
			for _, s := range analysis.TrackedSlots(res.Merged) {
				if s == slot {
					load = in
				}
			}
		}
	})
	if load == nil {
		t.Fatalf("no demoted-slot load found:\n%s", ir.FormatFunc(res.Merged))
	}
	// Splice the load (keeping its operand uses intact) to just after its
	// alloca in the entry block, ahead of every store.
	slot := load.Operand(0).(*ir.Inst)
	blk := load.Parent()
	for i, in := range blk.Insts {
		if in == load {
			blk.Insts = append(blk.Insts[:i], blk.Insts[i+1:]...)
			break
		}
	}
	entry := slot.Parent()
	for i, in := range entry.Insts {
		if in == slot {
			rest := append([]*ir.Inst{load}, entry.Insts[i+1:]...)
			entry.Insts = append(entry.Insts[:i+1], rest...)
			break
		}
	}
	load.ForceSetParent(entry)
	got := codes(analysis.AuditMerge(auditOf(res)))
	if got[analysis.CodeUninitLoad] == 0 {
		t.Fatalf("reordered load not detected; got %v\n%s", got, ir.FormatFunc(res.Merged))
	}
}

func TestAuditDeadParam(t *testing.T) {
	res := mergePair(t, divergentPairIR, "fa", "fb")
	// Corrupt: disconnect a mapped parameter from all its uses, replacing
	// it with a constant — the merge "silently dropped an input".
	var victim *ir.Param
	for i, p := range res.Merged.Params {
		if i == 0 && res.HasFuncID {
			continue
		}
		if p.NumUses() > 0 {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Fatal("no used non-discriminator parameter")
	}
	ir.ReplaceAllUsesWith(victim, ir.NewConstInt(victim.Type(), 0))
	got := codes(analysis.AuditMerge(auditOf(res)))
	if got[analysis.CodeDeadParam] == 0 {
		t.Fatalf("dead parameter not detected; got %v", got)
	}
}

// TestAuditCleanWorkloadMerges sweeps merges across a small generated module
// and asserts the auditor stays silent on every committed-quality merge.
func TestAuditCleanWorkloadMerges(t *testing.T) {
	profiles := workload.UnscaledSmall()
	for _, p := range profiles {
		m := workload.Build(p)
		passes.DemotePhisModule(m)
		var defs []*ir.Func
		for _, f := range m.Funcs {
			if !f.IsDecl() {
				defs = append(defs, f)
			}
		}
		pairs := 0
		for i := 0; i < len(defs) && pairs < 12; i++ {
			for j := i + 1; j < len(defs) && pairs < 12; j++ {
				res, err := core.Merge(defs[i], defs[j], core.DefaultOptions())
				if err != nil {
					continue
				}
				pairs++
				if diags := analysis.AuditMerge(auditOf(res)); len(diags) != 0 {
					t.Errorf("%s: merge %s+%s produced diagnostics:\n%s",
						p.Name, defs[i].Name(), defs[j].Name(), analysis.FormatDiagnostics(diags))
				}
				res.Discard()
			}
		}
		if pairs == 0 {
			t.Errorf("%s: no mergeable pairs exercised", p.Name)
		}
	}
}
