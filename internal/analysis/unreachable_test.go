package analysis_test

// Cross-check of the two reachability views: the FM002 audit path
// (analysis.ReachableBlocks / UnreachableBlocks, a worklist walk over
// successor edges) and the verifier's DFS-interval dominator tree
// (ir.ComputeDomTree(f).Reachable, the basis of the FV007 dominance check).
// They are independent implementations of the same predicate and must agree
// on every block of every module the pipeline produces.

import (
	"testing"

	"fmsa/internal/analysis"
	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

// checkReachabilityAgreement compares both views on every block of every
// definition in m and reports per-block disagreements.
func checkReachabilityAgreement(t *testing.T, m *ir.Module, stage string) {
	t.Helper()
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		reach := analysis.ReachableBlocks(f, analysis.View{})
		dt := ir.ComputeDomTree(f)
		for _, b := range f.Blocks {
			if got, want := dt.Reachable(b), reach[b]; got != want {
				t.Errorf("%s: @%s %%%s: domtree says reachable=%v, dataflow says %v",
					stage, f.Name(), b.Name(), got, want)
			}
		}
		dead := analysis.UnreachableBlocks(f)
		for _, b := range dead {
			if dt.Reachable(b) {
				t.Errorf("%s: @%s %%%s: listed unreachable but domtree disagrees",
					stage, f.Name(), b.Name())
			}
		}
		if len(dead)+len(reach) != len(f.Blocks) {
			t.Errorf("%s: @%s: %d unreachable + %d reachable != %d blocks",
				stage, f.Name(), len(dead), len(reach), len(f.Blocks))
		}
	}
}

// TestReachabilityViewsAgreeOnWorkloads runs both views over every workload
// module, before and after a full exploration run (merged bodies, thunks and
// dispatch blocks included).
func TestReachabilityViewsAgreeOnWorkloads(t *testing.T) {
	profiles := workload.UnscaledSmall()
	if !testing.Short() {
		profiles = append(profiles, workload.SPECLike()...)
		profiles = append(profiles, workload.MiBenchLike()...)
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			m := workload.Build(p)
			checkReachabilityAgreement(t, m, "pre-merge")
			opts := explore.DefaultOptions()
			opts.Threshold = 2
			opts.Verify = ir.VerifyFull
			rep := explore.Run(m, opts)
			if len(rep.VerifyDiags) != 0 {
				t.Fatalf("pipeline not clean:\n%s", ir.FormatVerifyDiags(rep.VerifyDiags))
			}
			checkReachabilityAgreement(t, m, "post-merge")
		})
	}
}

// TestReachabilityViewsAgreeOnDeadBlocks pins the agreement on a function
// with genuinely unreachable code, where a disagreement would be silent on
// healthy corpora.
func TestReachabilityViewsAgreeOnDeadBlocks(t *testing.T) {
	m := ir.MustParseModule("dead", `
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
orphan:
  br label %orphan2
orphan2:
  ret i32 3
}
`)
	f := m.FuncByName("f")
	dead := analysis.UnreachableBlocks(f)
	if len(dead) != 2 {
		t.Fatalf("want 2 unreachable blocks, got %d", len(dead))
	}
	checkReachabilityAgreement(t, m, "fixture")
	// The verifier must still pass the function: unreachable code is an
	// FM002 audit concern (dead weight), not an IR validity violation.
	if diags := ir.VerifyFuncLevel(f, ir.VerifyFull); len(diags) != 0 {
		t.Errorf("verifier flagged structurally valid dead code:\n%s", ir.FormatVerifyDiags(diags))
	}
}
