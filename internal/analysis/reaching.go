package analysis

import "fmsa/internal/ir"

// ReachingStores is a forward may-analysis over the stores of non-escaping
// alloca slots: which store (or the synthetic "uninitialized" definition a
// slot is born with) may provide the value observed at a program point.
// It powers load-before-store detection — the failure mode φ-demotion plus
// merging can introduce, where a demoted slot is read on a path that never
// stored to it.
type ReachingStores struct {
	// Slots lists the tracked allocas: slots whose address never escapes
	// (every use is a load from it or a store to it).
	Slots []*ir.Inst

	slotIdx    map[*ir.Inst]int
	uninitBit  []int // per-slot synthetic definition
	storeBit   map[*ir.Inst]int
	slotOfBit  []int   // fact -> slot
	defsOfSlot [][]int // slot -> all its fact bits
	res        *Result
}

func (r *ReachingStores) Direction() Direction { return Forward }
func (r *ReachingStores) Meet() Meet           { return Union }
func (r *ReachingStores) NumFacts() int        { return len(r.slotOfBit) }

// Boundary: at function entry every slot holds its uninitialized
// definition.
func (r *ReachingStores) Boundary(set *BitSet) {
	for _, bit := range r.uninitBit {
		set.Set(bit)
	}
}

func (r *ReachingStores) Transfer(b *ir.Block, out *BitSet) {
	panic("analysis: reaching stores uses GenKill")
}

func (r *ReachingStores) GenKill(b *ir.Block, gen, kill *BitSet) {
	for _, in := range b.Insts {
		slot, ok := r.storeTarget(in)
		if !ok {
			continue
		}
		// Later stores in the block overwrite earlier ones to the same
		// slot, so clear only this slot's previously genned defs — the
		// accumulated kill set also covers other slots whose gens must
		// survive.
		for _, bit := range r.defsOfSlot[slot] {
			kill.Set(bit)
			gen.Clear(bit)
		}
		gen.Set(r.storeBit[in])
	}
}

// storeTarget returns the tracked slot index a store writes, if any.
func (r *ReachingStores) storeTarget(in *ir.Inst) (int, bool) {
	if in.Op != ir.OpStore {
		return 0, false
	}
	slot, ok := in.Operand(1).(*ir.Inst)
	if !ok {
		return 0, false
	}
	idx, ok := r.slotIdx[slot]
	return idx, ok
}

// loadSource returns the tracked slot index a load reads, if any.
func (r *ReachingStores) loadSource(in *ir.Inst) (int, bool) {
	if in.Op != ir.OpLoad {
		return 0, false
	}
	slot, ok := in.Operand(0).(*ir.Inst)
	if !ok {
		return 0, false
	}
	idx, ok := r.slotIdx[slot]
	return idx, ok
}

// TrackedSlots returns the non-escaping alloca slots of f: allocas used
// exclusively as the pointer operand of loads and stores. A slot whose
// address is passed to a call, stored elsewhere, GEP'd or cast may be
// written through an alias, so it cannot be reasoned about store-by-store.
func TrackedSlots(f *ir.Func) []*ir.Inst {
	var slots []*ir.Inst
	f.Insts(func(in *ir.Inst) {
		if in.Op != ir.OpAlloca {
			return
		}
		for _, u := range in.Uses() {
			switch {
			case u.User.Op == ir.OpLoad && u.Index == 0:
			case u.User.Op == ir.OpStore && u.Index == 1:
			default:
				return // address escapes
			}
		}
		slots = append(slots, in)
	})
	return slots
}

// ComputeReachingStores solves reaching stores for f's tracked slots over
// the given CFG view.
func ComputeReachingStores(f *ir.Func, view View) *ReachingStores {
	r := &ReachingStores{
		Slots:    TrackedSlots(f),
		slotIdx:  map[*ir.Inst]int{},
		storeBit: map[*ir.Inst]int{},
	}
	for i, s := range r.Slots {
		r.slotIdx[s] = i
	}
	r.uninitBit = make([]int, len(r.Slots))
	r.defsOfSlot = make([][]int, len(r.Slots))
	addFact := func(slot int) int {
		bit := len(r.slotOfBit)
		r.slotOfBit = append(r.slotOfBit, slot)
		r.defsOfSlot[slot] = append(r.defsOfSlot[slot], bit)
		return bit
	}
	for i := range r.Slots {
		r.uninitBit[i] = addFact(i)
	}
	f.Insts(func(in *ir.Inst) {
		if in.Op != ir.OpStore {
			return
		}
		if slot, ok := in.Operand(1).(*ir.Inst); ok {
			if idx, tracked := r.slotIdx[slot]; tracked {
				r.storeBit[in] = addFact(idx)
			}
		}
	})
	r.res = SolveView(f, r, view)
	return r
}

// UninitLoad is a load that may observe a slot's uninitialized definition.
type UninitLoad struct {
	// Load reads the slot.
	Load *ir.Inst
	// Slot is the alloca whose synthetic definition reaches the load.
	Slot *ir.Inst
}

// UninitLoads returns every load (in the analysed view, in layout order)
// that the uninitialized definition of its slot may reach: on some path
// from the entry the slot is read before any store to it.
func (r *ReachingStores) UninitLoads() []UninitLoad {
	var out []UninitLoad
	cur := NewBitSet(r.NumFacts())
	for _, b := range r.res.Order {
		cur.CopyFrom(r.res.In(b))
		for _, in := range b.Insts {
			if slot, ok := r.loadSource(in); ok && cur.Get(r.uninitBit[slot]) {
				out = append(out, UninitLoad{Load: in, Slot: r.Slots[slot]})
			}
			if slot, ok := r.storeTarget(in); ok {
				for _, bit := range r.defsOfSlot[slot] {
					cur.Clear(bit)
				}
				cur.Set(r.storeBit[in])
			}
		}
	}
	return out
}

// Reaches reports whether the given store (or, when store is nil, the
// slot's uninitialized definition) may reach the start of b.
func (r *ReachingStores) Reaches(store *ir.Inst, slot *ir.Inst, b *ir.Block) bool {
	set := r.res.In(b)
	if set == nil {
		return false
	}
	if store == nil {
		idx, ok := r.slotIdx[slot]
		return ok && set.Get(r.uninitBit[idx])
	}
	bit, ok := r.storeBit[store]
	return ok && set.Get(bit)
}
