package analysis

import "fmsa/internal/ir"

// ReachableBlocks returns the set of blocks reachable from f's entry under
// the view.
func ReachableBlocks(f *ir.Func, view View) map[*ir.Block]bool {
	if f.IsDecl() {
		return nil
	}
	seen := map[*ir.Block]bool{}
	stack := []*ir.Block{f.Entry()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, s := range view.succs(b) {
			if !seen[s] {
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// UnreachableBlocks returns f's blocks that no path from the entry reaches,
// in layout order. Such blocks are dead weight the cost model still counts
// and a symptom of broken control-flow surgery (e.g. a dropped discriminator
// branch disconnecting one variant's code).
func UnreachableBlocks(f *ir.Func) []*ir.Block {
	if f.IsDecl() {
		return nil
	}
	reach := ReachableBlocks(f, View{})
	var dead []*ir.Block
	for _, b := range f.Blocks {
		if !reach[b] {
			dead = append(dead, b)
		}
	}
	return dead
}
