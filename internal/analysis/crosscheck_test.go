package analysis

import (
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

// The cross-check tests recompute liveness and reaching stores with a naive
// map-based fixed point — no bitsets, no worklist, no gen/kill precompute —
// and compare every per-block fact against the engine on workload-generated
// modules. Any ordering or widening bug in the worklist solver shows up as a
// disagreement here.

type valueSet map[ir.Value]bool

func (s valueSet) clone() valueSet {
	c := make(valueSet, len(s))
	for v := range s {
		c[v] = true
	}
	return c
}

func (s valueSet) equalAdd(o valueSet) bool {
	changed := false
	for v := range o {
		if !s[v] {
			s[v] = true
			changed = true
		}
	}
	return !changed
}

// naiveLiveness iterates transfer over all blocks until nothing changes.
func naiveLiveness(f *ir.Func) (in, out map[*ir.Block]valueSet) {
	in = map[*ir.Block]valueSet{}
	out = map[*ir.Block]valueSet{}
	// Phi-edge uses: value -> set at the end of the incoming predecessor.
	phiOut := map[*ir.Block]valueSet{}
	for _, b := range f.Blocks {
		in[b] = valueSet{}
		out[b] = valueSet{}
		phiOut[b] = valueSet{}
	}
	f.Insts(func(inst *ir.Inst) {
		if inst.Op != ir.OpPhi {
			return
		}
		for i := 0; i < inst.NumPhiIncoming(); i++ {
			v, pred := inst.PhiIncoming(i)
			if liveTracked(f, v) {
				phiOut[pred][v] = true
			}
		}
	})
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			o := phiOut[b].clone()
			for _, s := range b.Successors() {
				for v := range in[s] {
					o[v] = true
				}
			}
			// Simulate the block backwards instruction by instruction.
			cur := o.clone()
			for i := len(b.Insts) - 1; i >= 0; i-- {
				inst := b.Insts[i]
				if !inst.Type().IsVoid() {
					delete(cur, inst)
				}
				if inst.Op == ir.OpPhi {
					continue
				}
				for _, op := range inst.Operands() {
					if liveTracked(f, op) {
						cur[op] = true
					}
				}
			}
			if !out[b].equalAdd(o) || !in[b].equalAdd(cur) {
				changed = true
			}
		}
	}
	return in, out
}

// liveTracked mirrors the engine's value universe: parameters and
// value-producing instructions of f.
func liveTracked(f *ir.Func, v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Param:
		return x.Parent() == f
	case *ir.Inst:
		return !x.Type().IsVoid() && x.Parent() != nil && x.Parent().Parent() == f
	}
	return false
}

type def struct {
	slot  *ir.Inst
	store *ir.Inst // nil = the uninitialized definition
}

type defSet map[def]bool

// naiveReaching iterates the forward transfer over all blocks until nothing
// changes. Unreachable blocks keep empty in-sets, matching the engine.
func naiveReaching(f *ir.Func, slots []*ir.Inst) (in map[*ir.Block]defSet) {
	tracked := map[*ir.Inst]bool{}
	for _, s := range slots {
		tracked[s] = true
	}
	in = map[*ir.Block]defSet{}
	out := map[*ir.Block]defSet{}
	for _, b := range f.Blocks {
		in[b] = defSet{}
		out[b] = defSet{}
	}
	preds := map[*ir.Block][]*ir.Block{}
	for _, b := range f.Blocks {
		for _, s := range b.Successors() {
			preds[s] = append(preds[s], b)
		}
	}
	entry := f.Entry()
	for _, s := range slots {
		in[entry][def{slot: s}] = true
	}
	reach := ReachableBlocks(f, View{})
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if !reach[b] {
				continue
			}
			if b != entry {
				for _, p := range preds[b] {
					for d := range out[p] {
						if !in[b][d] {
							in[b][d] = true
							changed = true
						}
					}
				}
			}
			cur := in[b].clone2()
			for _, inst := range b.Insts {
				if inst.Op != ir.OpStore {
					continue
				}
				slot, ok := inst.Operand(1).(*ir.Inst)
				if !ok || !tracked[slot] {
					continue
				}
				for d := range cur {
					if d.slot == slot {
						delete(cur, d)
					}
				}
				cur[def{slot: slot, store: inst}] = true
			}
			for d := range cur {
				if !out[b][d] {
					out[b][d] = true
					changed = true
				}
			}
		}
	}
	return in
}

func (s defSet) clone2() defSet {
	c := make(defSet, len(s))
	for d := range s {
		c[d] = true
	}
	return c
}

// crosscheckModules yields a modest, varied sample of workload modules.
func crosscheckModules(t *testing.T) []*ir.Module {
	t.Helper()
	var mods []*ir.Module
	profiles := workload.UnscaledSmall()
	if !testing.Short() {
		profiles = append(profiles, workload.SPECLike()[0], workload.MiBenchLike()[0])
	}
	for _, p := range profiles {
		mods = append(mods, workload.Build(p))
	}
	return mods
}

func TestLivenessMatchesNaiveFixedPoint(t *testing.T) {
	for _, m := range crosscheckModules(t) {
		for _, f := range m.Funcs {
			if f.IsDecl() {
				continue
			}
			l := ComputeLiveness(f)
			nin, nout := naiveLiveness(f)
			for _, b := range f.Blocks {
				for _, v := range l.Values {
					if got, want := l.LiveIn(b, v), nin[b][v]; got != want {
						t.Fatalf("%s: LiveIn(%%%s, %s) = %v, naive says %v",
							f.Name(), b.Name(), v.Ident(), got, want)
					}
					if got, want := l.LiveOut(b, v), nout[b][v]; got != want {
						t.Fatalf("%s: LiveOut(%%%s, %s) = %v, naive says %v",
							f.Name(), b.Name(), v.Ident(), got, want)
					}
				}
			}
		}
	}
}

func TestReachingMatchesNaiveFixedPoint(t *testing.T) {
	stores := 0
	for _, m := range crosscheckModules(t) {
		for _, f := range m.Funcs {
			if f.IsDecl() {
				continue
			}
			rs := ComputeReachingStores(f, View{})
			nin := naiveReaching(f, rs.Slots)
			for _, b := range f.Blocks {
				for _, slot := range rs.Slots {
					if got, want := rs.Reaches(nil, slot, b), nin[b][def{slot: slot}]; got != want {
						t.Fatalf("%s %%%s: uninit def of %s reaches = %v, naive says %v",
							f.Name(), b.Name(), slot.Ident(), got, want)
					}
				}
			}
			f.Insts(func(inst *ir.Inst) {
				if inst.Op != ir.OpStore {
					return
				}
				slot, ok := inst.Operand(1).(*ir.Inst)
				if !ok {
					return
				}
				for _, b := range f.Blocks {
					got := rs.Reaches(inst, slot, b)
					want := nin[b][def{slot: slot, store: inst}]
					if got != want {
						t.Fatalf("%s %%%s: store reaches = %v, naive says %v",
							f.Name(), b.Name(), got, want)
					}
					stores++
				}
			})
		}
	}
	if stores == 0 {
		t.Fatal("workload sample exercised no tracked stores; pick different profiles")
	}
}
