package analysis

import (
	"testing"

	"fmsa/internal/ir"
)

// diamondFunc builds:
//
//	entry: slot = alloca i64; condbr %p, a, b
//	a:     store 1, slot; br join
//	b:     (storeInB? store 2, slot); br join
//	join:  v = load slot; ret v
func diamondFunc(storeInB bool) (*ir.Func, *ir.Inst, *ir.Inst) {
	f := ir.NewFunc("diamond", ir.FuncOf(ir.I64(), ir.Bool()))
	f.Params[0].SetName("p")
	entry := f.NewBlockIn("entry")
	a := f.NewBlockIn("a")
	b := f.NewBlockIn("b")
	join := f.NewBlockIn("join")

	bd := ir.NewBuilder(entry)
	slot := bd.Alloca(ir.I64())
	bd.CondBr(f.Params[0], a, b)

	bd.SetBlock(a)
	bd.Store(ir.NewConstInt(ir.I64(), 1), slot)
	bd.Br(join)

	bd.SetBlock(b)
	if storeInB {
		bd.Store(ir.NewConstInt(ir.I64(), 2), slot)
	}
	bd.Br(join)

	bd.SetBlock(join)
	v := bd.Load(slot)
	bd.Ret(v)
	return f, slot, v
}

func TestReachingStoresDiamond(t *testing.T) {
	// One arm missing its store: the uninitialized definition reaches the
	// join, so the load is a may-uninit read.
	f, slot, load := diamondFunc(false)
	rs := ComputeReachingStores(f, View{})
	if len(rs.Slots) != 1 || rs.Slots[0] != slot {
		t.Fatalf("tracked slots = %v, want [%s]", rs.Slots, slot.Ident())
	}
	loads := rs.UninitLoads()
	if len(loads) != 1 || loads[0].Load != load || loads[0].Slot != slot {
		t.Fatalf("UninitLoads = %v, want the join load", loads)
	}

	// Both arms storing: no uninit read.
	f2, _, _ := diamondFunc(true)
	if loads := ComputeReachingStores(f2, View{}).UninitLoads(); len(loads) != 0 {
		t.Fatalf("UninitLoads on fully-stored diamond = %v, want none", loads)
	}
}

func TestReachingStoresView(t *testing.T) {
	// Restricting the view to the storing arm hides the uninit read: the
	// load only observes uninitialized memory on the b path.
	f, _, _ := diamondFunc(false)
	entry := f.Entry()
	aArm := View{Succs: func(b *ir.Block) []*ir.Block {
		if b == entry {
			return []*ir.Block{f.Blocks[1]} // a only
		}
		return b.Successors()
	}}
	if loads := ComputeReachingStores(f, aArm).UninitLoads(); len(loads) != 0 {
		t.Fatalf("UninitLoads under a-only view = %v, want none", loads)
	}
	bArm := View{Succs: func(b *ir.Block) []*ir.Block {
		if b == entry {
			return []*ir.Block{f.Blocks[2]} // b only
		}
		return b.Successors()
	}}
	if loads := ComputeReachingStores(f, bArm).UninitLoads(); len(loads) != 1 {
		t.Fatalf("UninitLoads under b-only view = %v, want one", loads)
	}
}

// loopFunc builds a counted loop where the slot is stored only inside the
// body — the header load may observe uninitialized memory on iteration 0.
//
//	entry:  slot = alloca i64; br header
//	header: v = load slot; c = icmp slt v, 10; condbr c, body, exit
//	body:   store 7, slot; br header
//	exit:   ret v
func loopFunc(storeInEntry bool) (*ir.Func, *ir.Inst) {
	f := ir.NewFunc("loop", ir.FuncOf(ir.I64()))
	entry := f.NewBlockIn("entry")
	header := f.NewBlockIn("header")
	body := f.NewBlockIn("body")
	exit := f.NewBlockIn("exit")

	bd := ir.NewBuilder(entry)
	slot := bd.Alloca(ir.I64())
	if storeInEntry {
		bd.Store(ir.NewConstInt(ir.I64(), 0), slot)
	}
	bd.Br(header)

	bd.SetBlock(header)
	v := bd.Load(slot)
	c := bd.ICmp(ir.PredSLT, v, ir.NewConstInt(ir.I64(), 10))
	bd.CondBr(c, body, exit)

	bd.SetBlock(body)
	bd.Store(ir.NewConstInt(ir.I64(), 7), slot)
	bd.Br(header)

	bd.SetBlock(exit)
	bd.Ret(v)
	return f, v
}

func TestReachingStoresLoop(t *testing.T) {
	f, load := loopFunc(false)
	loads := ComputeReachingStores(f, View{}).UninitLoads()
	if len(loads) != 1 || loads[0].Load != load {
		t.Fatalf("UninitLoads = %v, want the header load", loads)
	}
	f2, _ := loopFunc(true)
	if loads := ComputeReachingStores(f2, View{}).UninitLoads(); len(loads) != 0 {
		t.Fatalf("UninitLoads with entry store = %v, want none", loads)
	}
}

func TestLivenessDiamond(t *testing.T) {
	f, slot, load := diamondFunc(false)
	l := ComputeLiveness(f)

	entry, a, b, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	// The slot pointer is used in a (store) and join (load): live out of
	// entry and through both arms.
	for _, blk := range []*ir.Block{a, b} {
		if !l.LiveIn(blk, slot) {
			t.Errorf("slot not live into %%%s", blk.Name())
		}
	}
	if l.LiveIn(entry, slot) {
		t.Errorf("slot live into entry before its definition")
	}
	// The loaded value is consumed by ret inside join: live nowhere else.
	if l.LiveOut(join, load) || l.LiveIn(join, load) {
		t.Errorf("load result should be block-local to join")
	}
	// The parameter is consumed by entry's branch: dead in the arms.
	p := f.Params[0]
	if !l.LiveIn(entry, p) {
		t.Errorf("param not live into entry")
	}
	if l.LiveIn(a, p) || l.LiveIn(b, p) {
		t.Errorf("param live past its only use")
	}
}

func TestLivenessLoop(t *testing.T) {
	f, load := loopFunc(true)
	l := ComputeLiveness(f)
	header, body := f.Blocks[1], f.Blocks[2]
	// The header load feeds the exit ret: live out of the header.
	if !l.LiveOut(header, load) {
		t.Errorf("header load not live out of header")
	}
	// But the header redefines it every iteration, so the previous value is
	// dead across the back edge.
	if l.LiveOut(body, ir.Value(load)) || l.LiveIn(header, load) {
		t.Errorf("redefined value live across the back edge")
	}
}

func TestLivenessPhi(t *testing.T) {
	// Phi incoming values must be live at the end of their predecessor,
	// not at the phi block's entry.
	//
	//	entry: condbr p, a, b
	//	a:     x = add 1, 2; br join
	//	b:     y = add 3, 4; br join
	//	join:  m = phi [x, a], [y, b]; ret m
	f := ir.NewFunc("phi", ir.FuncOf(ir.I64(), ir.Bool()))
	entry := f.NewBlockIn("entry")
	a := f.NewBlockIn("a")
	b := f.NewBlockIn("b")
	join := f.NewBlockIn("join")
	bd := ir.NewBuilder(entry)
	bd.CondBr(f.Params[0], a, b)
	bd.SetBlock(a)
	x := bd.Add(ir.NewConstInt(ir.I64(), 1), ir.NewConstInt(ir.I64(), 2))
	bd.Br(join)
	bd.SetBlock(b)
	y := bd.Add(ir.NewConstInt(ir.I64(), 3), ir.NewConstInt(ir.I64(), 4))
	bd.Br(join)
	bd.SetBlock(join)
	m := bd.Phi(ir.I64())
	ir.AddIncoming(m, x, a)
	ir.AddIncoming(m, y, b)
	bd.Ret(m)

	l := ComputeLiveness(f)
	if !l.LiveOut(a, x) || !l.LiveOut(b, y) {
		t.Errorf("phi incoming values not live out of their predecessors")
	}
	if l.LiveIn(join, x) || l.LiveIn(join, y) {
		t.Errorf("phi incoming values live into the phi block itself")
	}
	if l.LiveIn(b, x) || l.LiveIn(a, y) {
		t.Errorf("phi incoming values live on the wrong arm")
	}
}

func TestUnreachableBlocks(t *testing.T) {
	f, _, _ := diamondFunc(true)
	if dead := UnreachableBlocks(f); len(dead) != 0 {
		t.Fatalf("UnreachableBlocks on connected CFG = %v", dead)
	}
	// Add an orphan block.
	orphan := f.NewBlockIn("orphan")
	bd := ir.NewBuilder(orphan)
	bd.Ret(ir.NewConstInt(ir.I64(), 0))
	dead := UnreachableBlocks(f)
	if len(dead) != 1 || dead[0] != orphan {
		t.Fatalf("UnreachableBlocks = %v, want [orphan]", dead)
	}
}

func TestReachingStoresInvokeEdges(t *testing.T) {
	// A store before an invoke reaches both the normal continuation and
	// the landing block; a store that only happens on the normal path does
	// not reach the landing block.
	//
	//	entry:  slot = alloca i64; store 1, slot; invoke @ext() to normal unwind lpad
	//	normal: store 2, slot; v = load slot; ret v
	//	lpad:   tok = landingpad cleanup; w = load slot; ret w
	m := ir.NewModule("t")
	ext := m.NewFuncIn("ext", ir.FuncOf(ir.Void()))
	f := m.NewFuncIn("inv", ir.FuncOf(ir.I64()))
	entry := f.NewBlockIn("entry")
	normal := f.NewBlockIn("normal")
	lpad := f.NewBlockIn("lpad")

	bd := ir.NewBuilder(entry)
	slot := bd.Alloca(ir.I64())
	st1 := bd.Store(ir.NewConstInt(ir.I64(), 1), slot)
	bd.Invoke(ext, nil, normal, lpad)

	bd.SetBlock(normal)
	st2 := bd.Store(ir.NewConstInt(ir.I64(), 2), slot)
	bd.Ret(bd.Load(slot))

	bd.SetBlock(lpad)
	bd.LandingPad("cleanup")
	bd.Ret(bd.Load(slot))

	rs := ComputeReachingStores(f, View{})
	if loads := rs.UninitLoads(); len(loads) != 0 {
		t.Fatalf("UninitLoads = %v, want none (entry store dominates)", loads)
	}
	if !rs.Reaches(st1, slot, lpad) {
		t.Errorf("entry store does not reach the landing block")
	}
	if rs.Reaches(st2, slot, lpad) {
		t.Errorf("normal-path store reaches the landing block")
	}
}

func TestSolveUnterminatedAndDeclFunc(t *testing.T) {
	// Analyses must tolerate declarations and not choke on exit blocks.
	decl := ir.NewFunc("d", ir.FuncOf(ir.Void()))
	if got := UnreachableBlocks(decl); got != nil {
		t.Fatalf("UnreachableBlocks(decl) = %v", got)
	}
	if got := TrackedSlots(decl); got != nil {
		t.Fatalf("TrackedSlots(decl) = %v", got)
	}
}
