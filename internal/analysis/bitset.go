package analysis

import "math/bits"

// BitSet is a dense fixed-capacity bit vector, the lattice element of the
// dataflow engine: every analysis numbers its facts (values, definitions,
// blocks) and represents a program point as the set of facts that hold
// there. Meet and transfer become word-parallel boolean operations.
type BitSet struct {
	n     int
	words []uint64
}

// NewBitSet returns an empty set with capacity for n facts.
func NewBitSet(n int) *BitSet {
	return &BitSet{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the capacity of the set.
func (s *BitSet) Len() int { return s.n }

// Get reports whether bit i is set.
func (s *BitSet) Get(i int) bool {
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Set sets bit i.
func (s *BitSet) Set(i int) { s.words[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (s *BitSet) Clear(i int) { s.words[i/64] &^= 1 << (uint(i) % 64) }

// Fill sets every bit (the ⊤ element of intersect-meet problems).
func (s *BitSet) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Reset clears every bit.
func (s *BitSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the bits beyond n so Equal and Count stay exact after Fill.
func (s *BitSet) trim() {
	if r := uint(s.n) % 64; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << r) - 1
	}
}

// CopyFrom makes s an exact copy of o (capacities must match).
func (s *BitSet) CopyFrom(o *BitSet) {
	copy(s.words, o.words)
}

// Clone returns an independent copy of s.
func (s *BitSet) Clone() *BitSet {
	c := NewBitSet(s.n)
	c.CopyFrom(s)
	return c
}

// UnionWith adds every bit of o to s.
func (s *BitSet) UnionWith(o *BitSet) {
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes every bit of s not in o.
func (s *BitSet) IntersectWith(o *BitSet) {
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DiffWith removes every bit of o from s (s = s \ o).
func (s *BitSet) DiffWith(o *BitSet) {
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and o hold exactly the same bits.
func (s *BitSet) Equal(o *BitSet) bool {
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s *BitSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (s *BitSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}
