// Package analysis is the static-analysis layer of the merging pipeline: a
// generic worklist dataflow engine over the IR CFG with concrete analyses
// (liveness, reaching stores, unreachable code, load-before-store) and, on
// top of them, a merge auditor (AuditMerge) that statically checks merged
// functions for the failure modes φ-demotion and sequence-alignment merging
// can introduce. The paper's implementation leans on LLVM's verifier for
// this; here the IR is ours, so the soundness checks are too.
package analysis

import "fmsa/internal/ir"

// Direction selects which way facts flow through the CFG.
type Direction int

// Dataflow directions.
const (
	// Forward propagates facts from entry toward exits, iterating blocks
	// in reverse post-order.
	Forward Direction = iota
	// Backward propagates facts from exits toward the entry, iterating
	// blocks in post-order.
	Backward
)

// Meet selects the confluence operator applied where CFG paths join.
type Meet int

// Meet operators.
const (
	// Union ("may" analyses): a fact holds if it holds on any path.
	Union Meet = iota
	// Intersect ("must" analyses): a fact holds only if it holds on all
	// paths.
	Intersect
)

// View is a filtered view of a function's CFG. The zero View is the full
// graph; a non-nil Succs replaces every block's successor edges, letting
// clients analyse a restricted graph — the auditor uses this to follow only
// the edges consistent with one func_id value. Blocks unreachable under the
// view simply drop out of the iteration order.
type View struct {
	// Succs overrides successor edges; nil means ir.Block.Successors.
	Succs func(*ir.Block) []*ir.Block
}

func (v View) succs(b *ir.Block) []*ir.Block {
	if v.Succs != nil {
		return v.Succs(b)
	}
	return b.Successors()
}

// Problem is a dataflow problem: a fact numbering plus a per-block transfer
// function. Implementations are typically gen-kill (see GenKill), but the
// interface admits arbitrary monotone transfers.
type Problem interface {
	// Direction reports which way facts flow.
	Direction() Direction
	// Meet reports the confluence operator.
	Meet() Meet
	// NumFacts is the bit-vector width.
	NumFacts() int
	// Boundary initializes the entry value (Forward) or the value flowing
	// into every exit block (Backward). The set arrives zeroed.
	Boundary(set *BitSet)
	// Transfer computes out from in for block b. in must not be mutated;
	// out arrives as a copy of in.
	Transfer(b *ir.Block, out *BitSet)
}

// GenKill is an optional Problem refinement: when implemented, the engine
// uses precomputed gen/kill sets (out = gen ∪ (in \ kill)) instead of
// calling Transfer, turning each transfer into two word-parallel ops.
type GenKill interface {
	Problem
	// GenKill fills the gen and kill sets of b. Called once per block.
	GenKill(b *ir.Block, gen, kill *BitSet)
}

// Result holds the fixed point of a dataflow problem: the fact sets at the
// entry and exit of every block reachable under the analysed view.
type Result struct {
	// Order is the iteration order used (RPO for forward problems,
	// post-order for backward); it contains exactly the reachable blocks.
	Order []*ir.Block
	in    map[*ir.Block]*BitSet
	out   map[*ir.Block]*BitSet
}

// In returns the fact set at the start of b (nil for blocks unreachable
// under the analysed view).
func (r *Result) In(b *ir.Block) *BitSet { return r.in[b] }

// Out returns the fact set at the end of b (nil for unreachable blocks).
func (r *Result) Out(b *ir.Block) *BitSet { return r.out[b] }

// cfg is the per-solve flow graph: reachable blocks in RPO plus index-based
// successor and predecessor adjacency under the view.
type cfg struct {
	rpo    []*ir.Block
	index  map[*ir.Block]int
	succs  [][]int
	preds  [][]int
	isExit []bool
}

// buildCFG traverses f from the entry under view, returning reachable
// blocks in reverse post-order with adjacency lists. Successor edges keep
// their syntactic order and multiplicity (a conditional branch with both
// arms on one block contributes two edges).
func buildCFG(f *ir.Func, view View) *cfg {
	seen := map[*ir.Block]bool{}
	var post []*ir.Block
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		succs := view.succs(b)
		for i := len(succs) - 1; i >= 0; i-- {
			visit(succs[i])
		}
		post = append(post, b)
	}
	visit(f.Entry())
	g := &cfg{index: map[*ir.Block]int{}}
	for i := len(post) - 1; i >= 0; i-- {
		g.index[post[i]] = len(g.rpo)
		g.rpo = append(g.rpo, post[i])
	}
	n := len(g.rpo)
	g.succs = make([][]int, n)
	g.preds = make([][]int, n)
	g.isExit = make([]bool, n)
	for i, b := range g.rpo {
		ss := view.succs(b)
		g.isExit[i] = len(ss) == 0
		for _, s := range ss {
			j := g.index[s]
			g.succs[i] = append(g.succs[i], j)
			g.preds[j] = append(g.preds[j], i)
		}
	}
	return g
}

// Solve runs p to its fixed point over the full CFG of f.
func Solve(f *ir.Func, p Problem) *Result {
	return SolveView(f, p, View{})
}

// SolveView runs p to its fixed point over the view of f's CFG. The solver
// is a classic round-robin worklist: blocks are seeded in the problem
// direction's preferred order (RPO forward, post-order backward) so most
// acyclic problems converge in one pass, and re-queued only when a
// predecessor's (resp. successor's) value changes.
func SolveView(f *ir.Func, p Problem, view View) *Result {
	g := buildCFG(f, view)
	n := len(g.rpo)
	nf := p.NumFacts()
	forward := p.Direction() == Forward

	in := make([]*BitSet, n)
	out := make([]*BitSet, n)
	for i := 0; i < n; i++ {
		in[i] = NewBitSet(nf)
		out[i] = NewBitSet(nf)
	}

	// Precompute gen/kill when the problem supports it.
	var gens, kills []*BitSet
	gk, hasGK := p.(GenKill)
	if hasGK {
		gens = make([]*BitSet, n)
		kills = make([]*BitSet, n)
		for i, b := range g.rpo {
			gens[i] = NewBitSet(nf)
			kills[i] = NewBitSet(nf)
			gk.GenKill(b, gens[i], kills[i])
		}
	}

	boundary := NewBitSet(nf)
	p.Boundary(boundary)

	// ⊤ for intersect problems is the full set; meet then only removes
	// facts. Union problems start from ∅.
	top := NewBitSet(nf)
	if p.Meet() == Intersect {
		top.Fill()
	}

	// inputs/results/deps express the solve direction uniformly: for a
	// forward problem the input of block i meets the results of preds(i)
	// and its result is out[i]; backward swaps the roles.
	inputs, results := in, out
	deps, users := g.preds, g.succs
	if !forward {
		inputs, results = out, in
		deps, users = g.succs, g.preds
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if !forward {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}

	scratch := NewBitSet(nf)
	apply := func(i int) bool {
		// Meet over dependencies into inputs[i].
		dep := deps[i]
		boundaryIn := (forward && i == 0) || (!forward && g.isExit[i])
		switch {
		case len(dep) == 0 && !boundaryIn:
			// No dependencies and not a boundary block (possible in
			// backward problems with infinite loops): keep ⊤.
			inputs[i].CopyFrom(top)
		default:
			first := true
			if boundaryIn {
				inputs[i].CopyFrom(boundary)
				first = false
			}
			for _, d := range dep {
				if first {
					inputs[i].CopyFrom(results[d])
					first = false
					continue
				}
				if p.Meet() == Union {
					inputs[i].UnionWith(results[d])
				} else {
					inputs[i].IntersectWith(results[d])
				}
			}
		}
		// Transfer into results[i]; report whether it changed.
		scratch.CopyFrom(inputs[i])
		if hasGK {
			scratch.DiffWith(kills[i])
			scratch.UnionWith(gens[i])
		} else {
			p.Transfer(g.rpo[i], scratch)
		}
		if scratch.Equal(results[i]) {
			return false
		}
		results[i].CopyFrom(scratch)
		return true
	}

	// Seed results with ⊤ so the first meet is sound for intersect
	// problems, then iterate to the fixed point.
	for i := 0; i < n; i++ {
		results[i].CopyFrom(top)
	}
	queued := make([]bool, n)
	queue := make([]int, 0, n)
	for _, i := range order {
		queue = append(queue, i)
		queued[i] = true
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		queued[i] = false
		if !apply(i) {
			continue
		}
		for _, u := range users[i] {
			if !queued[u] {
				queue = append(queue, u)
				queued[u] = true
			}
		}
	}

	res := &Result{
		in:  make(map[*ir.Block]*BitSet, n),
		out: make(map[*ir.Block]*BitSet, n),
	}
	for i, b := range g.rpo {
		res.in[b] = in[i]
		res.out[b] = out[i]
	}
	if forward {
		res.Order = append(res.Order, g.rpo...)
	} else {
		for i := n - 1; i >= 0; i-- {
			res.Order = append(res.Order, g.rpo[i])
		}
	}
	return res
}
