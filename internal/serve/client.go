package serve

// Client is the in-process protocol client used by cmd/fmsa tooling, the
// serve benchmark experiment and the tests. One goroutine reads response
// frames and dispatches them to per-ticket waiters, so callers can pipeline
// submits and collect results in any order.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"fmsa/internal/wire"
)

// ErrBusy reports that the server refused a submit at its admission bound;
// retry after an outstanding result drains.
var ErrBusy = errors.New("serve: server busy")

// RemoteError is a server-reported request failure (Error frame).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "serve: remote: " + e.Msg }

// Client drives one connection to an fmsa-serve daemon.
type Client struct {
	c      net.Conn
	wmu    sync.Mutex
	ticket atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan wire.Frame
	readErr error
	done    chan struct{}
}

// Dial connects to an fmsa-serve daemon and starts the response reader.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c:       c,
		pending: make(map[uint64]chan wire.Frame),
		done:    make(chan struct{}),
	}
	go cl.readLoop()
	return cl, nil
}

// Close tears down the connection. Outstanding waiters fail with the read
// loop's terminal error.
func (cl *Client) Close() error {
	err := cl.c.Close()
	<-cl.done
	return err
}

// readLoop dispatches every response frame to the waiter registered under
// its ticket. A response for an unknown ticket is dropped — the only source
// is a waiter that already consumed its quota, which is a client bug, not a
// protocol state worth crashing a connection over.
func (cl *Client) readLoop() {
	defer close(cl.done)
	br := bufio.NewReaderSize(cl.c, 1<<16)
	for {
		f, err := wire.ReadFrame(br, 0)
		if err != nil {
			cl.mu.Lock()
			cl.readErr = err
			for t, ch := range cl.pending {
				close(ch)
				delete(cl.pending, t)
			}
			cl.mu.Unlock()
			return
		}
		cl.mu.Lock()
		ch := cl.pending[f.Ticket]
		cl.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// call registers a waiter, sends the request and returns the waiter
// channel. Each request gets at most two responses (Accepted then Result),
// so the channel is buffered for both and the read loop never blocks.
func (cl *Client) call(f wire.Frame) (uint64, chan wire.Frame, error) {
	t := cl.ticket.Add(1)
	f.Ticket = t
	ch := make(chan wire.Frame, 2)
	cl.mu.Lock()
	cl.pending[t] = ch
	cl.mu.Unlock()
	cl.wmu.Lock()
	err := wire.WriteFrame(cl.c, f)
	cl.wmu.Unlock()
	if err != nil {
		cl.drop(t)
		return 0, nil, err
	}
	return t, ch, nil
}

// drop unregisters a ticket's waiter.
func (cl *Client) drop(t uint64) {
	cl.mu.Lock()
	delete(cl.pending, t)
	cl.mu.Unlock()
}

// recv waits for the next response on ch, surfacing the read loop's
// terminal error when the connection died first.
func (cl *Client) recv(ch chan wire.Frame) (wire.Frame, error) {
	f, ok := <-ch
	if !ok {
		cl.mu.Lock()
		err := cl.readErr
		cl.mu.Unlock()
		if err == nil {
			err = errors.New("serve: connection closed")
		}
		return wire.Frame{}, err
	}
	return f, nil
}

// Open creates a merge session; overrides may be nil (server defaults) or a
// JSON OpenOverrides payload.
func (cl *Client) Open(overrides *OpenOverrides) (uint64, error) {
	var payload []byte
	if overrides != nil {
		var err error
		if payload, err = json.Marshal(overrides); err != nil {
			return 0, err
		}
	}
	t, ch, err := cl.call(wire.Frame{Kind: wire.FrameOpen, Payload: payload})
	if err != nil {
		return 0, err
	}
	defer cl.drop(t)
	f, err := cl.recv(ch)
	if err != nil {
		return 0, err
	}
	switch f.Kind {
	case wire.FrameOpened:
		return f.Session, nil
	case wire.FrameError:
		return 0, &RemoteError{Msg: string(f.Payload)}
	default:
		return 0, fmt.Errorf("serve: unexpected %d response to open", f.Kind)
	}
}

// Pending tracks one in-flight submit; Wait blocks for its result.
type Pending struct {
	cl     *Client
	ticket uint64
	ch     chan wire.Frame
}

// Submit ships an fmir-encoded module into a session. It returns once the
// server admits (Accepted) or refuses (ErrBusy) the submit; the merge
// itself completes asynchronously — Wait on the returned Pending.
func (cl *Client) Submit(session uint64, module []byte) (*Pending, error) {
	t, ch, err := cl.call(wire.Frame{Kind: wire.FrameSubmit, Session: session, Payload: module})
	if err != nil {
		return nil, err
	}
	f, err := cl.recv(ch)
	if err != nil {
		cl.drop(t)
		return nil, err
	}
	switch f.Kind {
	case wire.FrameAccepted:
		return &Pending{cl: cl, ticket: t, ch: ch}, nil
	case wire.FrameBusy:
		cl.drop(t)
		return nil, ErrBusy
	case wire.FrameError:
		cl.drop(t)
		return nil, &RemoteError{Msg: string(f.Payload)}
	default:
		cl.drop(t)
		return nil, fmt.Errorf("serve: unexpected %d response to submit", f.Kind)
	}
}

// Wait blocks until the submit's Result (or Error) frame arrives.
func (p *Pending) Wait() (Result, error) {
	defer p.cl.drop(p.ticket)
	f, err := p.cl.recv(p.ch)
	if err != nil {
		return Result{}, err
	}
	switch f.Kind {
	case wire.FrameResult:
		var res Result
		if err := json.Unmarshal(f.Payload, &res); err != nil {
			return Result{}, fmt.Errorf("serve: bad result payload: %w", err)
		}
		return res, nil
	case wire.FrameError:
		return Result{}, &RemoteError{Msg: string(f.Payload)}
	default:
		return Result{}, fmt.Errorf("serve: unexpected %d response to submit", f.Kind)
	}
}

// CloseSession drains and tears down one session.
func (cl *Client) CloseSession(session uint64) error {
	t, ch, err := cl.call(wire.Frame{Kind: wire.FrameClose, Session: session})
	if err != nil {
		return err
	}
	defer cl.drop(t)
	f, err := cl.recv(ch)
	if err != nil {
		return err
	}
	switch f.Kind {
	case wire.FrameClose:
		return nil
	case wire.FrameError:
		return &RemoteError{Msg: string(f.Payload)}
	default:
		return fmt.Errorf("serve: unexpected %d response to close", f.Kind)
	}
}
