// Package serve implements the fmsa-serve daemon core: warm merge sessions
// (explore.Session) exposed over a length-prefixed frame protocol
// (wire.Frame) so repeat traffic — a build farm resubmitting a module after
// a small edit — pays delta cost instead of a cold exploration.
//
// Protocol, from the client's side:
//
//	Open    → Opened      create a session (payload: optional JSON overrides)
//	Submit  → Accepted    module admitted; Result arrives asynchronously
//	        → Busy        admission limit hit; retry after a result drains
//	        → Result      merge finished (payload: JSON serve.Result)
//	Close   → Close       session drained and torn down
//	any     → Error       malformed request, unknown session, decode failure
//
// Every request carries a client-chosen Ticket that responses echo, so one
// connection can multiplex sessions and pipeline submits. Per-session
// ordering is FIFO: a dedicated goroutine owns each explore.Session and
// processes its submits in arrival order, which is what makes warm results
// reproducible — the session sees the same submission sequence a cold
// replay would. Isolation is structural: sessions share nothing but the
// admission semaphore, so one client's corpus never warms (or poisons)
// another's caches. (The optional Config.Store is the one deliberate
// exception: a shared content-addressed similarity database, safe because
// reuse is keyed by content, never by session.)
//
// Backpressure is bounded admission, not queueing: a Submit either reserves
// one of MaxInFlight global slots before Accepted is written, or is
// answered with Busy immediately (429 semantics). The server therefore
// holds at most MaxInFlight undecoded payloads plus the sessions' warm
// state — memory is bounded no matter how fast clients push.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/simdb"
	"fmsa/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Explore is the base option set every session starts from; Open
	// payloads may override the whitelisted knobs in OpenOverrides.
	Explore explore.Options
	// MaxInFlight bounds admitted-but-unfinished submits across all
	// sessions (<= 0 selects DefaultMaxInFlight). Submits beyond it get
	// Busy responses.
	MaxInFlight int
	// MaxPayload bounds a single frame payload (<= 0 selects
	// wire.DefaultMaxFramePayload).
	MaxPayload int
	// Summaries enables per-session function-summary tracking
	// (explore.SessionConfig.Summaries).
	Summaries bool
	// Store is an optional persistent similarity database shared by every
	// session the server opens (explore.SessionConfig.Store): submissions
	// from any client warm it, and it survives server restarts.
	Store *simdb.Store
}

// DefaultMaxInFlight is the admission bound when Config.MaxInFlight is
// unset: enough to pipeline a few clients without letting payload bytes
// accumulate unboundedly.
const DefaultMaxInFlight = 4

// OpenOverrides is the JSON schema of an Open payload. Zero-valued fields
// keep the server's configured default; an empty payload keeps all of them.
type OpenOverrides struct {
	Threshold int    `json:"threshold,omitempty"`
	Ranking   string `json:"ranking,omitempty"` // "exact" or "lsh"
	Workers   int    `json:"workers,omitempty"`
}

// Result is the JSON payload of a Result frame: the identity-relevant slice
// of the exploration report plus the submit's delta classification. The
// records digest is an FNV-1a fold of the committed merge sequence, so two
// runs agree on it exactly when they committed identical merges in
// identical order.
type Result struct {
	MergeOps            int                `json:"merge_ops"`
	FullyRemoved        int                `json:"fully_removed"`
	CandidatesEvaluated int                `json:"candidates_evaluated"`
	SizeBefore          int                `json:"size_before"`
	SizeAfter           int                `json:"size_after"`
	RecordsDigest       uint64             `json:"records_digest"`
	Delta               explore.DeltaStats `json:"delta"`
	WallNS              int64              `json:"wall_ns"`
}

// RecordsDigest folds a committed merge sequence into one comparable
// value: names, ranks and profits in commit order.
func RecordsDigest(recs []explore.MergeRecord) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for _, r := range recs {
		h.Write([]byte(r.Merged))
		h.Write([]byte{0})
		h.Write([]byte(r.F1))
		h.Write([]byte{0})
		h.Write([]byte(r.F2))
		for i, v := range []int{r.Rank, r.Profit} {
			for b := 0; b < 8; b++ {
				buf[i*8+b] = byte(uint64(v) >> (8 * b))
			}
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Server owns the listener loop, the admission semaphore and the per-
// connection session tables.
type Server struct {
	cfg Config
	sem chan struct{} // admission slots; nil until New

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	sessN    atomic.Uint64 // session id allocator (server-wide, never reused)
	inFlight sync.WaitGroup
	connWG   sync.WaitGroup
}

// New builds a Server; call Serve to start accepting.
func New(cfg Config) *Server {
	n := cfg.MaxInFlight
	if n <= 0 {
		n = DefaultMaxInFlight
	}
	return &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, n),
		conns: make(map[net.Conn]struct{}),
	}
}

// ErrServerClosed is returned by Serve after Shutdown stops the listener.
var ErrServerClosed = errors.New("serve: server closed")

// Serve accepts connections on ln until Shutdown. Each connection gets a
// reader goroutine; each session a worker goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Shutdown drains the server: the listener closes, new submits are refused
// with Busy, admitted work runs to completion and its results are written,
// then connections close. If ctx expires first, connections are severed
// with work possibly unfinished.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.inFlight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return err
}

// submitJob is one unit of session-worker work. closing marks the Close
// sentinel: the worker replies and exits after the queue ahead of it drains.
type submitJob struct {
	ticket  uint64
	payload []byte
	closing bool
}

// session pairs a warm explore.Session with its FIFO worker queue. The
// queue capacity matches the admission bound, so an admitted submit never
// blocks the connection reader.
type session struct {
	id    uint64
	sess  *explore.Session
	queue chan submitJob
}

// serveConn runs one connection's read loop. All writes to the connection
// go through wmu — the reader writes Accepted/Busy/Error inline and session
// workers write Results concurrently.
func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	var wmu sync.Mutex
	sessions := make(map[uint64]*session)
	var workers sync.WaitGroup
	defer func() {
		// Reader gone (EOF, protocol error, or Shutdown severed the
		// connection): drain the workers, then drop the conn. Queued jobs
		// still run — their admission slots must be released and, when the
		// peer merely half-closed, their results still delivered.
		for _, se := range sessions {
			close(se.queue)
		}
		workers.Wait()
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	write := func(f wire.Frame) {
		wmu.Lock()
		defer wmu.Unlock()
		wire.WriteFrame(c, f) // a dead peer surfaces as reader EOF; nothing to do here
	}
	fail := func(sess, ticket uint64, msg string) {
		write(wire.Frame{Kind: wire.FrameError, Session: sess, Ticket: ticket, Payload: []byte(msg)})
	}

	br := bufio.NewReaderSize(c, 1<<16)
	for {
		f, err := wire.ReadFrame(br, s.cfg.MaxPayload)
		if err != nil {
			return // EOF, oversized frame or garbage: the stream is done
		}
		switch f.Kind {
		case wire.FrameOpen:
			sess, err := s.openSession(f.Payload)
			if err != nil {
				fail(0, f.Ticket, err.Error())
				continue
			}
			id := s.sessN.Add(1)
			se := &session{id: id, sess: sess, queue: make(chan submitJob, cap(s.sem))}
			sessions[id] = se
			workers.Add(1)
			go s.sessionWorker(se, write, &workers)
			write(wire.Frame{Kind: wire.FrameOpened, Session: id, Ticket: f.Ticket})

		case wire.FrameSubmit:
			se := sessions[f.Session]
			if se == nil {
				fail(f.Session, f.Ticket, fmt.Sprintf("unknown session %d", f.Session))
				continue
			}
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				write(wire.Frame{Kind: wire.FrameBusy, Session: f.Session, Ticket: f.Ticket})
				continue
			}
			select {
			case s.sem <- struct{}{}:
			default:
				// Admission bound hit: refuse now rather than queue bytes.
				write(wire.Frame{Kind: wire.FrameBusy, Session: f.Session, Ticket: f.Ticket})
				continue
			}
			s.inFlight.Add(1)
			write(wire.Frame{Kind: wire.FrameAccepted, Session: f.Session, Ticket: f.Ticket})
			se.queue <- submitJob{ticket: f.Ticket, payload: f.Payload}

		case wire.FrameClose:
			se := sessions[f.Session]
			if se == nil {
				fail(f.Session, f.Ticket, fmt.Sprintf("unknown session %d", f.Session))
				continue
			}
			delete(sessions, f.Session) // no further submits; worker drains then replies
			se.queue <- submitJob{ticket: f.Ticket, closing: true}
			close(se.queue)

		default:
			fail(f.Session, f.Ticket, fmt.Sprintf("unexpected frame kind %d from client", f.Kind))
		}
	}
}

// openSession builds a warm session from the server's base options plus the
// request's whitelisted overrides.
func (s *Server) openSession(payload []byte) (*explore.Session, error) {
	opts := s.cfg.Explore
	if len(payload) > 0 {
		var ov OpenOverrides
		if err := json.Unmarshal(payload, &ov); err != nil {
			return nil, fmt.Errorf("serve: bad open payload: %w", err)
		}
		if ov.Threshold > 0 {
			opts.Threshold = ov.Threshold
		}
		if ov.Ranking != "" {
			mode, err := explore.ParseRankingMode(ov.Ranking)
			if err != nil {
				return nil, err
			}
			opts.Ranking = mode
		}
		if ov.Workers > 0 {
			opts.Workers = ov.Workers
		}
	}
	return explore.NewSession(explore.SessionConfig{
		Explore: opts, Summaries: s.cfg.Summaries, Store: s.cfg.Store,
	})
}

// sessionWorker owns one explore.Session: submits run strictly FIFO, each
// releasing its admission slot after the response is written.
func (s *Server) sessionWorker(se *session, write func(wire.Frame), wg *sync.WaitGroup) {
	defer wg.Done()
	for job := range se.queue {
		if job.closing {
			write(wire.Frame{Kind: wire.FrameClose, Session: se.id, Ticket: job.ticket})
			return
		}
		s.runSubmit(se, job, write)
	}
}

// runSubmit decodes, merges and responds for one admitted submit.
func (s *Server) runSubmit(se *session, job submitJob, write func(wire.Frame)) {
	defer func() {
		<-s.sem
		s.inFlight.Done()
	}()
	start := time.Now()
	m, err := wire.Decode(job.payload, wire.Options{Workers: se.sess.Options().Workers})
	if err != nil {
		write(wire.Frame{Kind: wire.FrameError, Session: se.id, Ticket: job.ticket,
			Payload: []byte("decode: " + err.Error())})
		return
	}
	rep, delta, err := se.sess.Submit(m)
	if err != nil {
		write(wire.Frame{Kind: wire.FrameError, Session: se.id, Ticket: job.ticket,
			Payload: []byte("submit: " + err.Error())})
		return
	}
	res := Result{
		MergeOps:            rep.MergeOps,
		FullyRemoved:        rep.FullyRemoved,
		CandidatesEvaluated: rep.CandidatesEvaluated,
		SizeBefore:          rep.SizeBefore,
		SizeAfter:           rep.SizeAfter,
		RecordsDigest:       RecordsDigest(rep.Records),
		Delta:               delta,
		WallNS:              time.Since(start).Nanoseconds(),
	}
	payload, err := json.Marshal(&res)
	if err != nil {
		write(wire.Frame{Kind: wire.FrameError, Session: se.id, Ticket: job.ticket,
			Payload: []byte("marshal: " + err.Error())})
		return
	}
	write(wire.Frame{Kind: wire.FrameResult, Session: se.id, Ticket: job.ticket, Payload: payload})
}
