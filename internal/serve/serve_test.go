package serve_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/serve"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

func testSpecs(n int) []workload.FuncSpec {
	specs := make([]workload.FuncSpec, 0, n)
	for i := 0; i < n; i++ {
		seed := int64(100 + i)
		if i%3 == 2 {
			seed = int64(100 + i - 2)
		}
		specs = append(specs, workload.FuncSpec{
			Name:        fmt.Sprintf("f%03d", i),
			Seed:        seed,
			Scalar:      ir.I64(),
			NumParams:   1 + i%3,
			Regions:     2 + i%2,
			OpsPerBlock: 5 + i%4,
			Internal:    true,
		})
	}
	return specs
}

func encodeSpecs(t *testing.T, specs []workload.FuncSpec) []byte {
	t.Helper()
	m := ir.NewModule("sess")
	for _, sp := range specs {
		workload.Generate(m, sp)
	}
	data, err := wire.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func startServer(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

func baseOpts() explore.Options {
	opts := explore.DefaultOptions()
	opts.Threshold = 2
	opts.Workers = 2
	return opts
}

func submitWait(t *testing.T, cl *serve.Client, sess uint64, module []byte) serve.Result {
	t.Helper()
	p, err := cl.Submit(sess, module)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServeWarmMatchesCold: a warm resubmit over the wire reports the same
// merges (digest, counts, sizes) as a cold session fed the same module, and
// the delta classification reflects the edit.
func TestServeWarmMatchesCold(t *testing.T) {
	_, addr := startServer(t, serve.Config{Explore: baseOpts()})
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	base := testSpecs(40)
	delta := append([]workload.FuncSpec(nil), base...)
	delta[7].ConstSalt++

	warm, err := cl.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	first := submitWait(t, cl, warm, encodeSpecs(t, base))
	if first.Delta.Warm || first.Delta.Added != first.Delta.Funcs {
		t.Fatalf("first submit misclassified: %+v", first.Delta)
	}
	if first.MergeOps == 0 {
		t.Fatal("corpus produced no merges; the test corpus is too thin")
	}
	warmRes := submitWait(t, cl, warm, encodeSpecs(t, delta))
	if !warmRes.Delta.Warm || warmRes.Delta.Changed != 1 {
		t.Fatalf("warm resubmit misclassified: %+v", warmRes.Delta)
	}

	cold, err := cl.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	coldRes := submitWait(t, cl, cold, encodeSpecs(t, delta))
	if coldRes.Delta.Warm {
		t.Fatalf("fresh session reported warm: %+v", coldRes.Delta)
	}

	if warmRes.RecordsDigest != coldRes.RecordsDigest ||
		warmRes.MergeOps != coldRes.MergeOps ||
		warmRes.SizeAfter != coldRes.SizeAfter ||
		warmRes.CandidatesEvaluated != coldRes.CandidatesEvaluated {
		t.Fatalf("warm and cold disagree over the wire\nwarm: %+v\ncold: %+v", warmRes, coldRes)
	}

	if err := cl.CloseSession(warm); err != nil {
		t.Fatal(err)
	}
	if err := cl.CloseSession(cold); err != nil {
		t.Fatal(err)
	}
	// A submit to a closed session must fail loudly, not hang.
	if _, err := cl.Submit(warm, encodeSpecs(t, base)); err == nil {
		t.Fatal("submit to a closed session succeeded")
	} else {
		var re *serve.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("got %v, want RemoteError", err)
		}
	}
}

// TestServeOpenOverrides: per-session option overrides apply and isolation
// holds — two sessions with different thresholds explore independently.
func TestServeOpenOverrides(t *testing.T) {
	_, addr := startServer(t, serve.Config{Explore: baseOpts()})
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	module := encodeSpecs(t, testSpecs(40))

	s1, err := cl.Open(&serve.OpenOverrides{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cl.Open(&serve.OpenOverrides{Threshold: 5, Ranking: "lsh"})
	if err != nil {
		t.Fatal(err)
	}
	r1 := submitWait(t, cl, s1, module)
	r2 := submitWait(t, cl, s2, module)
	if r1.MergeOps == 0 || r2.MergeOps == 0 {
		t.Fatalf("override sessions produced no merges: %+v / %+v", r1, r2)
	}
	if _, err := cl.Open(&serve.OpenOverrides{Ranking: "bogus"}); err == nil {
		t.Fatal("bogus ranking override accepted")
	}
}

// TestServeBackpressure: with a single admission slot, a burst of submits
// draws at least one Busy, and retrying after results drain succeeds.
func TestServeBackpressure(t *testing.T) {
	cfg := serve.Config{Explore: baseOpts(), MaxInFlight: 1}
	_, addr := startServer(t, cfg)
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The slot holder is deliberately large so its merge is still running
	// while the burst arrives; the burst modules are small so their refusal
	// is pure admission, not queue pressure.
	large := encodeSpecs(t, testSpecs(300))
	module := encodeSpecs(t, testSpecs(30))

	holder, err := cl.Submit(sess, large)
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	var pending []*serve.Pending
	for i := 0; i < 8; i++ {
		p, err := cl.Submit(sess, module)
		if errors.Is(err, serve.ErrBusy) {
			busy++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	if busy == 0 {
		t.Fatal("burst past a 1-slot admission bound drew no Busy")
	}
	if _, err := holder.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pending {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// The refused submits retry cleanly once the slot is free.
	p, err := cl.Submit(sess, module)
	if err != nil {
		t.Fatalf("retry after drain: %v", err)
	}
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestServeGracefulDrain: Shutdown completes admitted work — its result
// arrives — while refusing new submits.
func TestServeGracefulDrain(t *testing.T) {
	srv, addr := startServer(t, serve.Config{Explore: baseOpts()})
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	module := encodeSpecs(t, testSpecs(40))
	p, err := cl.Submit(sess, module)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Shutdown(ctx) }()

	res, err := p.Wait()
	if err != nil {
		t.Fatalf("admitted submit lost during drain: %v", err)
	}
	if res.MergeOps == 0 {
		t.Fatal("drained submit produced no merges")
	}
	if err := <-drained; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := serve.Dial(addr); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestServeConcurrentClients: independent clients on independent sessions
// make progress concurrently and stay isolated.
func TestServeConcurrentClients(t *testing.T) {
	_, addr := startServer(t, serve.Config{Explore: baseOpts(), MaxInFlight: 4})
	const clients = 3
	results := make(chan serve.Result, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			cl, err := serve.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			sess, err := cl.Open(nil)
			if err != nil {
				errs <- err
				return
			}
			module := encodeSpecs(t, testSpecs(25+i))
			p, err := cl.Submit(sess, module)
			if err != nil {
				errs <- err
				return
			}
			res, err := p.Wait()
			if err != nil {
				errs <- err
				return
			}
			results <- res
		}(i)
	}
	for i := 0; i < clients; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case res := <-results:
			if res.Delta.Warm {
				t.Fatalf("fresh client session reported warm: %+v", res.Delta)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("timed out waiting for concurrent clients")
		}
	}
}

// TestServeRejectsGarbage: a malformed module payload produces an Error
// response and leaves the session usable.
func TestServeRejectsGarbage(t *testing.T) {
	_, addr := startServer(t, serve.Config{Explore: baseOpts()})
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cl.Submit(sess, []byte("not an fmir module"))
	if err != nil {
		t.Fatal(err) // admission happens before decoding
	}
	if _, err := p.Wait(); err == nil {
		t.Fatal("garbage module produced a result")
	}
	// Session still works.
	res := submitWait(t, cl, sess, encodeSpecs(t, testSpecs(30)))
	if res.MergeOps == 0 {
		t.Fatal("session unusable after a rejected submit")
	}
}
