// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the command-line tools. Start begins CPU profiling immediately; the
// returned stop function flushes the CPU profile and takes the heap
// snapshot, so callers defer it around the whole run.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start opens the requested profiles. Either path may be empty; with both
// empty the returned stop is a no-op. On error nothing is left running.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not garbage
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
