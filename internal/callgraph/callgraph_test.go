package callgraph

import (
	"strings"
	"testing"

	"fmsa/internal/ir"
)

const graphSrc = `
declare void @ext()

define internal void @leaf() {
entry:
  ret void
}

define internal void @mid() {
entry:
  call void @leaf()
  call void @leaf()
  ret void
}

define void @root() {
entry:
  call void @mid()
  call void @ext()
  ret void
}

define internal void @island() {
entry:
  ret void
}

define internal void @selfrec(i64 %n) {
entry:
  %c = icmp sgt i64 %n, 0
  br i1 %c, label %go, label %done
go:
  %n1 = sub i64 %n, 1
  call void @selfrec(i64 %n1)
  br label %done
done:
  ret void
}

define internal void @mutA(i64 %n) {
entry:
  %c = icmp sgt i64 %n, 0
  br i1 %c, label %go, label %done
go:
  %n1 = sub i64 %n, 1
  call void @mutB(i64 %n1)
  br label %done
done:
  ret void
}

define internal void @mutB(i64 %n) {
entry:
  call void @mutA(i64 %n)
  ret void
}

define void @recroot(i64 %n) {
entry:
  call void @selfrec(i64 %n)
  call void @mutA(i64 %n)
  ret void
}

define i64 @takesaddr() {
entry:
  %p = ptrtoint void ()* @island to i64
  ret i64 %p
}
`

func build(t *testing.T) (*ir.Module, *Graph) {
	t.Helper()
	m, err := ir.ParseModule("cg", graphSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m, Build(m)
}

func TestEdgesAndCallSites(t *testing.T) {
	m, g := build(t)
	mid := m.FuncByName("mid")
	leaf := m.FuncByName("leaf")
	if cs := g.CallSites(leaf); cs != 2 {
		t.Errorf("leaf call sites = %d, want 2", cs)
	}
	if len(g.Callees(mid)) != 1 || g.Callees(mid)[0] != leaf {
		t.Errorf("mid callees = %v", g.Callees(mid))
	}
	if len(g.Callers(leaf)) != 1 || g.Callers(leaf)[0] != mid {
		t.Errorf("leaf callers wrong")
	}
}

func TestAddressTaken(t *testing.T) {
	m, g := build(t)
	if !g.AddressTaken(m.FuncByName("island")) {
		t.Error("island's address is taken via ptrtoint")
	}
	if g.AddressTaken(m.FuncByName("leaf")) {
		t.Error("leaf's address is not taken")
	}
}

func TestReachability(t *testing.T) {
	m, g := build(t)
	reach := g.Reachable(g.Roots())
	for _, name := range []string{"root", "mid", "leaf", "selfrec", "mutA", "mutB", "island"} {
		if !reach[m.FuncByName(name)] {
			t.Errorf("%s should be reachable", name)
		}
	}
}

func TestSCCs(t *testing.T) {
	_, g := build(t)
	sccs := g.SCCs()
	var mutual [][]*ir.Func
	for _, comp := range sccs {
		if len(comp) > 1 {
			mutual = append(mutual, comp)
		}
	}
	if len(mutual) != 1 || len(mutual[0]) != 2 {
		t.Fatalf("expected exactly one 2-member SCC, got %v", mutual)
	}
	names := map[string]bool{}
	for _, f := range mutual[0] {
		names[f.Name()] = true
	}
	if !names["mutA"] || !names["mutB"] {
		t.Errorf("SCC members = %v", names)
	}
}

func TestIsRecursive(t *testing.T) {
	m, g := build(t)
	if !g.IsRecursive(m.FuncByName("selfrec")) {
		t.Error("selfrec is recursive")
	}
	if !g.IsRecursive(m.FuncByName("mutA")) || !g.IsRecursive(m.FuncByName("mutB")) {
		t.Error("mutual recursion not detected")
	}
	if g.IsRecursive(m.FuncByName("leaf")) {
		t.Error("leaf is not recursive")
	}
}

func TestStats(t *testing.T) {
	_, g := build(t)
	st := g.ComputeStats()
	if st.Functions != 9 || st.Declarations != 1 {
		t.Errorf("functions/decls = %d/%d, want 9/1", st.Functions, st.Declarations)
	}
	if st.Recursive != 3 {
		t.Errorf("recursive = %d, want 3 (selfrec, mutA, mutB)", st.Recursive)
	}
	if st.Unreachable != 0 {
		t.Errorf("unreachable = %d, want 0 (island is address-taken)", st.Unreachable)
	}
	if st.CallSites == 0 || st.Edges == 0 {
		t.Error("edge/call-site counts missing")
	}
}

func TestStripUnreachable(t *testing.T) {
	m, err := ir.ParseModule("strip", `
define internal void @deadA() {
entry:
  call void @deadB()
  ret void
}

define internal void @deadB() {
entry:
  call void @deadA()
  ret void
}

define void @live() {
entry:
  ret void
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// The dead pair forms a cycle: plain use-count stripping cannot remove
	// it, reachability-based stripping can.
	if n := StripUnreachable(m); n != 2 {
		t.Errorf("stripped %d, want 2", n)
	}
	if m.FuncByName("deadA") != nil || m.FuncByName("deadB") != nil {
		t.Error("cyclic dead functions must be removed")
	}
	if m.FuncByName("live") == nil {
		t.Error("live function removed")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestDOTOutput(t *testing.T) {
	_, g := build(t)
	dot := g.DOT()
	if !strings.HasPrefix(dot, "digraph callgraph {") {
		t.Error("missing digraph header")
	}
	for _, fragment := range []string{`"mid" -> "leaf"`, `"root" -> "mid"`, `"mutA" -> "mutB"`} {
		if !strings.Contains(dot, fragment) {
			t.Errorf("DOT missing edge %s:\n%s", fragment, dot)
		}
	}
	if !strings.Contains(dot, `"root" [label="root", shape=box]`) {
		t.Error("external function should be a box")
	}
}
