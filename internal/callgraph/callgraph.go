// Package callgraph builds and analyzes the module call graph: direct call
// edges, address-taken escapes, reachability from external roots, and
// strongly connected components (recursion groups). The exploration
// framework's "Call Graph Update" stage (Fig. 7) rewires call sites after
// every committed merge; this package provides the analyses around it —
// deciding which originals can be deleted outright, stripping functions
// that merging made unreachable, and reporting module structure.
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"fmsa/internal/ir"
)

// Graph is a call graph over one module snapshot.
type Graph struct {
	mod *ir.Module
	// callees[f] lists the distinct functions f calls directly, in first-
	// call-site order.
	callees map[*ir.Func][]*ir.Func
	// callers[f] lists the distinct functions calling f directly.
	callers map[*ir.Func][]*ir.Func
	// addressTaken marks functions whose address escapes (indirect-call
	// candidates).
	addressTaken map[*ir.Func]bool
	// callSites[f] counts direct call/invoke instructions targeting f.
	callSites map[*ir.Func]int
}

// Build constructs the call graph of m.
func Build(m *ir.Module) *Graph {
	g := &Graph{
		mod:          m,
		callees:      map[*ir.Func][]*ir.Func{},
		callers:      map[*ir.Func][]*ir.Func{},
		addressTaken: map[*ir.Func]bool{},
		callSites:    map[*ir.Func]int{},
	}
	for _, f := range m.Funcs {
		seen := map[*ir.Func]bool{}
		f.Insts(func(in *ir.Inst) {
			for idx, op := range in.Operands() {
				callee, ok := op.(*ir.Func)
				if !ok {
					continue
				}
				isDirectCall := (in.Op == ir.OpCall || in.Op == ir.OpInvoke) && idx == 0
				if !isDirectCall {
					g.addressTaken[callee] = true
					continue
				}
				g.callSites[callee]++
				if !seen[callee] {
					seen[callee] = true
					g.callees[f] = append(g.callees[f], callee)
					g.callers[callee] = append(g.callers[callee], f)
				}
			}
		})
	}
	return g
}

// Callees returns the distinct direct callees of f.
func (g *Graph) Callees(f *ir.Func) []*ir.Func { return g.callees[f] }

// Callers returns the distinct direct callers of f.
func (g *Graph) Callers(f *ir.Func) []*ir.Func { return g.callers[f] }

// AddressTaken reports whether f's address escapes into data or casts.
func (g *Graph) AddressTaken(f *ir.Func) bool { return g.addressTaken[f] }

// CallSites returns the number of direct call sites targeting f.
func (g *Graph) CallSites(f *ir.Func) int { return g.callSites[f] }

// Roots returns the functions reachable from outside the module: external-
// linkage definitions and address-taken functions (conservatively callable
// indirectly).
func (g *Graph) Roots() []*ir.Func {
	var roots []*ir.Func
	for _, f := range g.mod.Funcs {
		if f.IsDecl() {
			continue
		}
		if f.Linkage == ir.ExternalLinkage || g.addressTaken[f] {
			roots = append(roots, f)
		}
	}
	return roots
}

// Reachable returns the set of functions reachable from the given roots
// over direct call edges (address-taken functions should be included in
// roots for soundness).
func (g *Graph) Reachable(roots []*ir.Func) map[*ir.Func]bool {
	reach := map[*ir.Func]bool{}
	var stack []*ir.Func
	for _, r := range roots {
		if !reach[r] {
			reach[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.callees[f] {
			if !reach[c] {
				reach[c] = true
				stack = append(stack, c)
			}
		}
	}
	return reach
}

// SCCs returns the strongly connected components of the call graph in
// reverse topological order (callees before callers), computed with
// Tarjan's algorithm. Components with more than one member — or a single
// self-calling member — are recursion groups.
func (g *Graph) SCCs() [][]*ir.Func {
	index := map[*ir.Func]int{}
	low := map[*ir.Func]int{}
	onStack := map[*ir.Func]bool{}
	var stack []*ir.Func
	var sccs [][]*ir.Func
	next := 0

	var strongconnect func(f *ir.Func)
	strongconnect = func(f *ir.Func) {
		index[f] = next
		low[f] = next
		next++
		stack = append(stack, f)
		onStack[f] = true
		for _, c := range g.callees[f] {
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if low[c] < low[f] {
					low[f] = low[c]
				}
			} else if onStack[c] && index[c] < low[f] {
				low[f] = index[c]
			}
		}
		if low[f] == index[f] {
			var comp []*ir.Func
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == f {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}

	for _, f := range g.mod.Funcs {
		if f.IsDecl() {
			continue
		}
		if _, seen := index[f]; !seen {
			strongconnect(f)
		}
	}
	return sccs
}

// IsRecursive reports whether f participates in a call cycle (including
// direct self-recursion).
func (g *Graph) IsRecursive(f *ir.Func) bool {
	for _, c := range g.callees[f] {
		if c == f {
			return true
		}
	}
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			for _, member := range comp {
				if member == f {
					return true
				}
			}
		}
	}
	return false
}

// Stats summarizes the call graph.
type Stats struct {
	Functions    int // definitions
	Declarations int
	Edges        int // distinct direct caller→callee pairs
	CallSites    int // direct call/invoke instructions
	AddressTaken int
	Recursive    int // functions inside nontrivial SCCs or self loops
	Unreachable  int // definitions not reachable from the roots
}

// ComputeStats derives summary statistics from the graph.
func (g *Graph) ComputeStats() Stats {
	var st Stats
	for _, f := range g.mod.Funcs {
		if f.IsDecl() {
			st.Declarations++
			continue
		}
		st.Functions++
		st.Edges += len(g.callees[f])
	}
	for _, n := range g.callSites {
		st.CallSites += n
	}
	st.AddressTaken = len(g.addressTaken)
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			st.Recursive += len(comp)
		} else if oneSelfCalls(g, comp[0]) {
			st.Recursive++
		}
	}
	reach := g.Reachable(g.Roots())
	for _, f := range g.mod.Funcs {
		if !f.IsDecl() && !reach[f] {
			st.Unreachable++
		}
	}
	return st
}

func oneSelfCalls(g *Graph, f *ir.Func) bool {
	for _, c := range g.callees[f] {
		if c == f {
			return true
		}
	}
	return false
}

// DOT renders the call graph in Graphviz format. External-linkage functions
// are drawn as boxes, internal as ellipses, declarations dashed.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph callgraph {\n")
	for _, f := range g.mod.Funcs {
		attrs := []string{fmt.Sprintf("label=%q", f.Name())}
		switch {
		case f.IsDecl():
			attrs = append(attrs, "style=dashed")
		case f.Linkage == ir.ExternalLinkage:
			attrs = append(attrs, "shape=box")
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", f.Name(), strings.Join(attrs, ", "))
	}
	// Stable edge order.
	var defs []*ir.Func
	defs = append(defs, g.mod.Funcs...)
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name() < defs[j].Name() })
	for _, f := range defs {
		for _, c := range g.callees[f] {
			fmt.Fprintf(&sb, "  %q -> %q;\n", f.Name(), c.Name())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// StripUnreachable removes definitions not reachable from the module's
// roots (external and address-taken functions), returning how many were
// removed. It is the call-graph-aware complement of dead-function
// stripping: functions made unreachable by merging disappear even when
// they still reference each other in cycles.
func StripUnreachable(m *ir.Module) int {
	g := Build(m)
	reach := g.Reachable(g.Roots())
	var dead []*ir.Func
	for _, f := range m.Funcs {
		if !f.IsDecl() && !reach[f] {
			dead = append(dead, f)
		}
	}
	// Drop bodies first so mutual references between dead functions vanish.
	for _, f := range dead {
		f.DropBody()
	}
	for _, f := range dead {
		if f.NumUses() == 0 {
			m.RemoveFunc(f)
		}
	}
	return len(dead)
}
